// Euler-tour numbering (Lemma 5.2) against a recursive host oracle.
#include <gtest/gtest.h>

#include <functional>

#include "par/euler.hpp"
#include "util/rng.hpp"

namespace copath::par {
namespace {

using pram::Machine;
using pram::Policy;

BinTree random_full_tree(util::Rng& rng, std::size_t leaves) {
  BinTree t = BinTree::with_size(2 * leaves - 1);
  int next_id = 0;
  const std::function<int(std::size_t)> build =
      [&](std::size_t nl) -> int {
    const int id = next_id++;
    if (nl == 1) return id;
    const std::size_t ls = 1 + rng.below(nl - 1);
    const int l = build(ls);
    const int r = build(nl - ls);
    t.left[static_cast<std::size_t>(id)] = l;
    t.right[static_cast<std::size_t>(id)] = r;
    t.parent[static_cast<std::size_t>(l)] = id;
    t.parent[static_cast<std::size_t>(r)] = id;
    return id;
  };
  t.root = build(leaves);
  return t;
}

struct Oracle {
  std::vector<std::int64_t> pre, in, post, depth, leaves, subtree, leafnum,
      firstleaf;
};

Oracle oracle(const BinTree& t) {
  const std::size_t n = t.size();
  Oracle o;
  o.pre.assign(n, 0);
  o.in.assign(n, 0);
  o.post.assign(n, 0);
  o.depth.assign(n, 0);
  o.leaves.assign(n, 0);
  o.subtree.assign(n, 0);
  o.leafnum.assign(n, -1);
  o.firstleaf.assign(n, 0);
  std::int64_t cpre = 0, cin = 0, cpost = 0, cleaf = 0;
  const std::function<void(std::int32_t, std::int64_t)> dfs =
      [&](std::int32_t v, std::int64_t d) {
        const auto vu = static_cast<std::size_t>(v);
        o.pre[vu] = cpre++;
        o.depth[vu] = d;
        o.firstleaf[vu] = cleaf;
        std::int64_t lv = 0, sz = 1;
        if (t.left[vu] != kNull) {
          dfs(t.left[vu], d + 1);
          lv += o.leaves[static_cast<std::size_t>(t.left[vu])];
          sz += o.subtree[static_cast<std::size_t>(t.left[vu])];
        }
        o.in[vu] = cin++;
        if (t.right[vu] != kNull) {
          dfs(t.right[vu], d + 1);
          lv += o.leaves[static_cast<std::size_t>(t.right[vu])];
          sz += o.subtree[static_cast<std::size_t>(t.right[vu])];
        }
        if (t.left[vu] == kNull && t.right[vu] == kNull) {
          lv = 1;
          o.leafnum[vu] = cleaf++;
        }
        o.leaves[vu] = lv;
        o.subtree[vu] = sz;
        o.post[vu] = cpost++;
      };
  dfs(t.root, 0);
  return o;
}

void expect_match(const BinTree& t, const EulerNumbers& got) {
  const Oracle want = oracle(t);
  for (std::size_t v = 0; v < t.size(); ++v) {
    ASSERT_EQ(got.pre[v], want.pre[v]) << "pre v=" << v;
    ASSERT_EQ(got.in[v], want.in[v]) << "in v=" << v;
    ASSERT_EQ(got.post[v], want.post[v]) << "post v=" << v;
    ASSERT_EQ(got.depth[v], want.depth[v]) << "depth v=" << v;
    ASSERT_EQ(got.leaves[v], want.leaves[v]) << "leaves v=" << v;
    ASSERT_EQ(got.subtree[v], want.subtree[v]) << "subtree v=" << v;
    ASSERT_EQ(got.leafnum[v], want.leafnum[v]) << "leafnum v=" << v;
    ASSERT_EQ(got.first_leaf[v], want.firstleaf[v]) << "first_leaf v=" << v;
  }
}

struct Shape {
  std::size_t leaves;
  std::size_t p;
  RankEngine engine;
};

class EulerSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(EulerSweep, MatchesOracleOnRandomTrees) {
  const auto [leaves, p, engine] = GetParam();
  util::Rng rng(leaves * 131 + p);
  for (int trial = 0; trial < 8; ++trial) {
    const BinTree t = random_full_tree(rng, leaves);
    Machine m({Policy::EREW, 1, p});
    expect_match(t, euler_numbers(m, t, engine));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EulerSweep,
    ::testing::Values(Shape{1, 1, RankEngine::Contract},
                      Shape{2, 1, RankEngine::Contract},
                      Shape{5, 2, RankEngine::Wyllie},
                      Shape{33, 4, RankEngine::Contract},
                      Shape{100, 8, RankEngine::Wyllie},
                      Shape{100, 8, RankEngine::Contract},
                      Shape{250, 16, RankEngine::Contract}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "l" + std::to_string(info.param.leaves) + "_p" +
             std::to_string(info.param.p) +
             (info.param.engine == RankEngine::Contract ? "_contract"
                                                        : "_wyllie");
    });

TEST(EulerShapes, LeftChain) {
  // Completely left-degenerate tree: internal i has internal i+1 as left
  // child and a leaf as right child (height = #leaves - 1).
  const std::size_t leaves = 128;
  const auto L = static_cast<std::int32_t>(leaves);
  BinTree t = BinTree::with_size(2 * leaves - 1);
  for (std::int32_t i = 0; i + 1 < L; ++i) {
    const std::int32_t leaf = L - 1 + i;
    t.right[static_cast<std::size_t>(i)] = leaf;
    t.parent[static_cast<std::size_t>(leaf)] = i;
    const std::int32_t lc = (i + 2 < L) ? i + 1 : 2 * L - 2;
    t.left[static_cast<std::size_t>(i)] = lc;
    t.parent[static_cast<std::size_t>(lc)] = i;
  }
  t.root = 0;
  t.validate();
  Machine m({Policy::EREW, 1, 16});
  expect_match(t, euler_numbers(m, t));
}

TEST(EulerShapes, SingleNodeAndPair) {
  BinTree t1 = BinTree::with_size(1);
  t1.root = 0;
  Machine m({Policy::EREW, 1, 2});
  const EulerNumbers n1 = euler_numbers(m, t1);
  EXPECT_EQ(n1.leaves[0], 1);
  EXPECT_EQ(n1.leafnum[0], 0);

  BinTree t3 = BinTree::with_size(3);
  t3.root = 0;
  t3.left[0] = 1;
  t3.right[0] = 2;
  t3.parent[1] = 0;
  t3.parent[2] = 0;
  const EulerNumbers n3 = euler_numbers(m, t3);
  EXPECT_EQ(n3.in[1], 0);
  EXPECT_EQ(n3.in[0], 1);
  EXPECT_EQ(n3.in[2], 2);
  EXPECT_EQ(n3.leaves[0], 2);
  EXPECT_EQ(n3.first_leaf[2], 1);
}

TEST(EulerCost, LogTimeLinearWork) {
  util::Rng rng(5);
  const std::size_t leaves = 1 << 12;
  const BinTree t = random_full_tree(rng, leaves);
  const std::size_t n = t.size();
  Machine m({Policy::EREW, 1, n / 13});
  (void)euler_numbers(m, t);
  EXPECT_LE(m.stats().steps, 300 * 13)
      << "expected O(log n) steps for the full numbering";
  EXPECT_LE(m.stats().work, 200 * n) << "expected O(n) work";
}

}  // namespace
}  // namespace copath::par
