// Parallel bracket matching (Lemma 5.1(3)) against the stack oracle.
#include <gtest/gtest.h>

#include <string>

#include "par/brackets.hpp"
#include "util/rng.hpp"

namespace copath::par {
namespace {

using pram::Array;
using pram::Machine;
using pram::Policy;

std::vector<std::int8_t> from_string(const std::string& s) {
  std::vector<std::int8_t> v;
  v.reserve(s.size());
  for (const char c : s)
    v.push_back(c == '(' ? 1 : (c == ')' ? -1 : 0));
  return v;
}

void expect_matches(const std::vector<std::int8_t>& sign, std::size_t p) {
  const auto want = match_brackets_seq(sign);
  Machine m({Policy::EREW, 1, p});
  Array<std::int8_t> s(m, sign);
  Array<std::int64_t> match(m, sign.size(), -1);
  match_brackets(m, s, match);
  for (std::size_t i = 0; i < sign.size(); ++i)
    ASSERT_EQ(match.host(i), want[i]) << "i=" << i << " p=" << p;
}

TEST(BracketOracle, StackSemantics) {
  const auto m = match_brackets_seq(from_string("(()())"));
  EXPECT_EQ(m[0], 5);
  EXPECT_EQ(m[1], 2);
  EXPECT_EQ(m[3], 4);
  EXPECT_EQ(m[5], 0);
}

TEST(BracketOracle, UnmatchedStayUnmatched) {
  const auto m = match_brackets_seq(from_string(")(("));
  EXPECT_EQ(m[0], -1);
  EXPECT_EQ(m[1], -1);
  EXPECT_EQ(m[2], -1);
}

struct Shape {
  std::size_t n;
  std::size_t p;
  double open_bias;
};

class BracketSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(BracketSweep, RandomStreams) {
  const auto [n, p, bias] = GetParam();
  util::Rng rng(n * 59 + p);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::int8_t> sign(n);
    for (auto& s : sign) {
      if (rng.chance(0.25)) {
        s = 0;
      } else {
        s = rng.chance(bias) ? 1 : -1;
      }
    }
    expect_matches(sign, p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BracketSweep,
    ::testing::Values(Shape{1, 1, 0.5}, Shape{8, 2, 0.5}, Shape{50, 7, 0.5},
                      Shape{100, 3, 0.2}, Shape{100, 3, 0.8},
                      Shape{512, 16, 0.5}, Shape{777, 13, 0.65}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.n) + "_p" +
             std::to_string(info.param.p) + "_b" +
             std::to_string(static_cast<int>(info.param.open_bias * 100));
    });

TEST(BracketAdversarial, DeepNesting) {
  // "(((…)))" forces every cross-block pair through the tournament root.
  for (const std::size_t n : {64u, 100u, 255u}) {
    std::vector<std::int8_t> sign(n);
    for (std::size_t i = 0; i < n / 2; ++i) sign[i] = 1;
    for (std::size_t i = n / 2; i < n; ++i) sign[i] = -1;
    for (const std::size_t p : {1u, 3u, 8u, 32u}) expect_matches(sign, p);
  }
}

TEST(BracketAdversarial, AlternatingPairs) {
  std::vector<std::int8_t> sign(200);
  for (std::size_t i = 0; i < sign.size(); ++i) sign[i] = i % 2 ? -1 : 1;
  for (const std::size_t p : {1u, 5u, 16u}) expect_matches(sign, p);
}

TEST(BracketAdversarial, AllOpensThenNothing) {
  std::vector<std::int8_t> sign(100, 1);
  expect_matches(sign, 8);
}

TEST(BracketAdversarial, AllCloses) {
  std::vector<std::int8_t> sign(100, -1);
  expect_matches(sign, 8);
}

TEST(BracketAdversarial, ClosesThenOpens) {
  std::vector<std::int8_t> sign(120);
  for (std::size_t i = 0; i < 60; ++i) sign[i] = -1;
  for (std::size_t i = 60; i < 120; ++i) sign[i] = 1;
  for (const std::size_t p : {2u, 9u}) expect_matches(sign, p);
}

TEST(BracketAdversarial, SawtoothAcrossBlocks) {
  // "(()((..." — blocks end mid-nesting so survivors travel several levels.
  std::vector<std::int8_t> sign;
  util::Rng rng(4242);
  for (int rep = 0; rep < 40; ++rep) {
    sign.push_back(1);
    sign.push_back(1);
    sign.push_back(-1);
    if (rng.chance(0.5)) sign.push_back(-1);
  }
  for (const std::size_t p : {1u, 4u, 7u, 30u}) expect_matches(sign, p);
}

TEST(BracketCost, WorkStaysLinear) {
  const std::size_t n = 1 << 14;
  util::Rng rng(77);
  std::vector<std::int8_t> sign(n);
  for (auto& s : sign) s = rng.chance(0.5) ? 1 : -1;
  Machine m({Policy::EREW, 1, n / 14});
  Array<std::int8_t> sg(m, sign);
  Array<std::int64_t> match(m, n, -1);
  match_brackets(m, sg, match);
  EXPECT_LE(m.stats().steps, 150 * 14) << "expected O(log n) steps";
  EXPECT_LE(m.stats().work, 120 * n) << "expected O(n) work";
}

}  // namespace
}  // namespace copath::par
