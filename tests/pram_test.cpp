// Semantics of the PRAM simulator: synchronous (deferred-write) steps,
// cost accounting, and the access-discipline checker for every policy.
#include <gtest/gtest.h>

#include "pram/array.hpp"
#include "pram/machine.hpp"

namespace copath::pram {
namespace {

Machine::Config cfg(Policy p, std::size_t workers = 1,
                    std::size_t procs = 0) {
  return Machine::Config{p, workers, procs};
}

TEST(Machine, StepCountsTimeAndWork) {
  Machine m(cfg(Policy::EREW));
  Array<int> a(m, 8, 0);
  m.step(8, [&](Ctx& c, std::size_t i) { a.put(c, i, 1); });
  m.step(4, [&](Ctx& c, std::size_t i) { a.put(c, i, 2); });
  EXPECT_EQ(m.stats().steps, 2u);
  EXPECT_EQ(m.stats().work, 12u);
  EXPECT_EQ(m.stats().max_processors, 8u);
  EXPECT_EQ(m.stats().writes, 12u);
}

TEST(Machine, DeferredWritesReadPreStepValues) {
  // Rotation with every processor reading its neighbour's pre-step value:
  // semantically a single synchronous step. (Unchecked policy: the rotate
  // pattern is read-write concurrent by design, the point here is the
  // deferred-write semantics, not the discipline.)
  Machine m(cfg(Policy::Unchecked));
  Array<int> a(m, 4, 10);
  for (std::size_t i = 0; i < 4; ++i) a.host(i) = static_cast<int>(i);
  m.step(4, [&](Ctx& c, std::size_t i) {
    a.put(c, i, a.get(c, (i + 1) % 4));
  });
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(a.host(i), static_cast<int>((i + 1) % 4));
}

TEST(Machine, EREWRejectsConcurrentReads) {
  Machine m(cfg(Policy::EREW));
  Array<int> a(m, 4, 0);
  EXPECT_THROW(
      m.step(4, [&](Ctx& c, std::size_t) { (void)a.get(c, 0); }),
      PramViolation);
}

TEST(Machine, EREWRejectsConcurrentWrites) {
  Machine m(cfg(Policy::EREW));
  Array<int> a(m, 4, 0);
  EXPECT_THROW(m.step(2, [&](Ctx& c, std::size_t) { a.put(c, 1, 7); }),
               PramViolation);
}

TEST(Machine, EREWAllowsDisjointAccess) {
  Machine m(cfg(Policy::EREW));
  Array<int> a(m, 64, 0);
  EXPECT_NO_THROW(m.step(64, [&](Ctx& c, std::size_t i) {
    a.put(c, i, static_cast<int>(i) + a.get(c, i));
  }));
}

TEST(Machine, StaleReadAfterOwnWriteIsFlagged) {
  Machine m(cfg(Policy::EREW));
  Array<int> a(m, 2, 0);
  EXPECT_THROW(m.step(1, [&](Ctx& c, std::size_t) {
                 a.put(c, 0, 1);
                 (void)a.get(c, 0);  // would read the stale pre-step value
               }),
               PramViolation);
}

TEST(Machine, CREWAllowsConcurrentReadsRejectsWrites) {
  Machine m(cfg(Policy::CREW));
  Array<int> a(m, 4, 42);
  Array<int> b(m, 4, 0);
  EXPECT_NO_THROW(m.step(4, [&](Ctx& c, std::size_t i) {
    b.put(c, i, a.get(c, 0));  // broadcast a[0] into b
  }));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(b.host(i), 42);
  EXPECT_THROW(m.step(2, [&](Ctx& c, std::size_t) { a.put(c, 3, 1); }),
               PramViolation);
}

TEST(Machine, CREWRejectsReadWriteMix) {
  Machine m(cfg(Policy::CREW));
  Array<int> a(m, 4, 0);
  EXPECT_THROW(m.step(2, [&](Ctx& c, std::size_t i) {
                 if (i == 0) {
                   a.put(c, 2, 9);
                 } else {
                   (void)a.get(c, 2);
                 }
               }),
               PramViolation);
}

TEST(Machine, CRCWCommonAcceptsAgreement) {
  Machine m(cfg(Policy::CRCW_Common));
  Array<int> a(m, 1, 0);
  EXPECT_NO_THROW(m.step(8, [&](Ctx& c, std::size_t) { a.put(c, 0, 5); }));
  EXPECT_EQ(a.host(0), 5);
}

TEST(Machine, CRCWCommonRejectsDisagreement) {
  Machine m(cfg(Policy::CRCW_Common));
  Array<int> a(m, 1, 0);
  EXPECT_THROW(m.step(2, [&](Ctx& c, std::size_t i) {
                 a.put(c, 0, static_cast<int>(i));
               }),
               PramViolation);
}

TEST(Machine, CRCWArbitraryKeepsHighestProcessor) {
  Machine m(cfg(Policy::CRCW_Arbitrary));
  Array<int> a(m, 1, -1);
  m.step(5, [&](Ctx& c, std::size_t i) { a.put(c, 0, static_cast<int>(i)); });
  EXPECT_EQ(a.host(0), 4);
}

TEST(Machine, CRCWPriorityKeepsLowestProcessor) {
  Machine m(cfg(Policy::CRCW_Priority));
  Array<int> a(m, 1, -1);
  m.step(5, [&](Ctx& c, std::size_t i) { a.put(c, 0, static_cast<int>(i)); });
  EXPECT_EQ(a.host(0), 0);
}

TEST(Machine, UncheckedSkipsDetectionButKeepsSemantics) {
  Machine m(cfg(Policy::Unchecked));
  Array<int> a(m, 4, 3);
  EXPECT_NO_THROW(m.step(4, [&](Ctx& c, std::size_t i) {
    a.put(c, i, a.get(c, 0));  // concurrent read, not checked
  }));
  EXPECT_EQ(m.stats().reads, 0u);  // no counters in unchecked mode
}

TEST(Machine, PforBrentSchedule) {
  Machine m(cfg(Policy::EREW, 1, 4));  // 4 virtual processors
  Array<int> a(m, 10, 0);
  m.pfor(10, [&](Ctx& c, std::size_t i) { a.put(c, i, 1); });
  // ceil(10/4) = 3 steps, work = 10.
  EXPECT_EQ(m.stats().steps, 3u);
  EXPECT_EQ(m.stats().work, 10u);
  EXPECT_EQ(m.pfor_steps(10), 3u);
}

TEST(Machine, BlockedStepChargesMaxAndSum) {
  Machine m(cfg(Policy::EREW, 1, 4));
  Array<int> a(m, 4, 0);
  m.blocked_step(4, [&](Ctx& c, std::size_t b) -> std::uint64_t {
    a.put(c, b, 1);
    return b + 1;  // costs 1, 2, 3, 4
  });
  EXPECT_EQ(m.stats().steps, 4u);   // max cost
  EXPECT_EQ(m.stats().work, 10u);   // sum of costs
}

TEST(Machine, MultiWorkerMatchesSingleWorker) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    Machine m(cfg(Policy::EREW, workers, 8));
    Array<std::int64_t> a(m, 100, 1);
    // prefix doubling accumulation with double buffering
    Array<std::int64_t> b(m, 100, 0);
    for (std::size_t d = 1; d < 100; d *= 2) {
      m.pfor(100, [&](Ctx& c, std::size_t i) {
        std::int64_t v = a.get(c, i);
        b.put(c, i, v);
      });
      m.pfor(100, [&](Ctx& c, std::size_t i) {
        std::int64_t v = a.get(c, i);
        if (i >= d) v += b.get(c, i - d);
        a.put(c, i, v);
      });
    }
    EXPECT_EQ(a.host(99), 100) << "workers=" << workers;
  }
}

TEST(Machine, CellAccountingTracksAllocations) {
  Machine m(cfg(Policy::EREW));
  EXPECT_EQ(m.stats().cells, 0u);
  {
    Array<int> a(m, 100, 0);
    EXPECT_EQ(m.stats().cells, 100u);
    Array<double> b(m, 50, 0.0);
    EXPECT_EQ(m.stats().cells, 150u);
  }
  EXPECT_EQ(m.stats().cells, 0u);
}

TEST(Machine, ViolationClearsAndMachineRemainsUsable) {
  Machine m(cfg(Policy::EREW));
  Array<int> a(m, 4, 0);
  EXPECT_THROW(
      m.step(4, [&](Ctx& c, std::size_t) { (void)a.get(c, 0); }),
      PramViolation);
  EXPECT_NO_THROW(
      m.step(4, [&](Ctx& c, std::size_t i) { a.put(c, i, 1); }));
}

TEST(Policy, Names) {
  EXPECT_STREQ(to_string(Policy::EREW), "EREW");
  EXPECT_STREQ(to_string(Policy::CRCW_Common), "CRCW(common)");
  EXPECT_TRUE(allows_concurrent_read(Policy::CREW));
  EXPECT_FALSE(allows_concurrent_write(Policy::CREW));
  EXPECT_TRUE(allows_concurrent_write(Policy::CRCW_Priority));
}

}  // namespace
}  // namespace copath::pram
