// The host reference of the bracket pipeline (§4): golden bracket streams,
// validity/minimality sweeps, and the repair-convergence claim.
#include <gtest/gtest.h>

#include "cograph/binarize.hpp"
#include "cograph/families.hpp"
#include "core/brackets.hpp"
#include "core/count.hpp"
#include "core/reference.hpp"
#include "util/rng.hpp"

namespace copath::core {
namespace {

using cograph::Cotree;
using cograph::RandomCotreeOptions;

TEST(Brackets, Fig10GoldenStream) {
  // §4's running example; vertex order a..f = 0..5, dummies 6, 7.
  const Cotree t = cograph::paper_fig10();
  auto bc = cograph::binarize(t);
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_host(bc, leaf_count);
  const BracketStream bs = generate_brackets_host(bc, leaf_count, p);
  EXPECT_EQ(bs.to_string(),
            "[0p (0l (0r )1p (1l (1r [2p (2l (2r ]3r ]3l [3p )4p )5p )6p "
            ")7p (6r (7r (4l (4r (5l (5r");
  EXPECT_EQ(bs.dummy_count, 2u);  // 2 p(v) - 2 with p(v) = 2
  EXPECT_EQ(bs.real_count, 6u);
  // Roles: a, c primary; b, e, f inserts; d bridge (paper's wording).
  EXPECT_EQ(bs.role[0], Role::Primary);
  EXPECT_EQ(bs.role[1], Role::Insert);
  EXPECT_EQ(bs.role[2], Role::Primary);
  EXPECT_EQ(bs.role[3], Role::Bridge);
  EXPECT_EQ(bs.role[4], Role::Insert);
  EXPECT_EQ(bs.role[5], Role::Insert);
}

TEST(Brackets, LengthIsLinearInN) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 70000 + static_cast<unsigned>(trial);
    const std::size_t n = 5 + rng.below(300);
    const Cotree t = cograph::random_cotree(n, opt);
    auto bc = cograph::binarize(t);
    const auto leaf_count = cograph::make_leftist(bc);
    const auto p = path_counts_host(bc, leaf_count);
    const BracketStream bs = generate_brackets_host(bc, leaf_count, p);
    // §4 end: the sequence (with dummies) stays O(n) — at most ~7n here.
    EXPECT_LE(bs.length(), 7 * n) << "n=" << n;
    EXPECT_LE(bs.dummy_count, 2 * n);
  }
}

TEST(Brackets, CliqueHasNoDummies) {
  // Cliques resolve through Case 2 with p(v) = 1 at every join: 0 dummies.
  auto bc = cograph::binarize(cograph::clique(16));
  const auto leaf_count = cograph::make_leftist(bc);
  const auto p = path_counts_host(bc, leaf_count);
  EXPECT_EQ(generate_brackets_host(bc, leaf_count, p).dummy_count, 0u);
}

TEST(Reference, Fig10IsHamiltonian) {
  ReferenceTrace trace;
  const PathCover c =
      min_path_cover_reference(cograph::paper_fig10(), &trace);
  EXPECT_EQ(c.paths.size(), 1u);
  EXPECT_TRUE(validate_path_cover(cograph::paper_fig10(), c).ok);
  EXPECT_LE(trace.repair_rounds, 1u);
}

TEST(Reference, RandomSweepValidMinimal) {
  util::Rng rng(2);
  std::size_t max_rounds = 0;
  for (int trial = 0; trial < 200; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 90000 + static_cast<unsigned>(trial);
    opt.skew = (trial % 4) * 0.3;
    const Cotree t = cograph::random_cotree(1 + rng.below(150), opt);
    ReferenceTrace trace;
    const PathCover c = min_path_cover_reference(t, &trace);
    const ValidationReport rep = validate_path_cover(t, c, true);
    ASSERT_TRUE(rep.ok) << rep.error << "\n" << t.format();
    max_rounds = std::max(max_rounds, trace.repair_rounds);
  }
  // The paper's analysis corresponds to one exchange round; we allow two
  // before declaring drift.
  EXPECT_LE(max_rounds, 2u);
}

TEST(Reference, FamiliesValidMinimal) {
  for (const auto& t :
       {cograph::clique(12), cograph::independent_set(7),
        cograph::star(9), cograph::complete_bipartite(6, 6),
        cograph::complete_multipartite({4, 3, 3}),
        cograph::threshold_graph({1, 0, 1, 1, 0, 1}),
        cograph::caterpillar(31, cograph::NodeKind::Join),
        cograph::caterpillar(32, cograph::NodeKind::Union)}) {
    const PathCover c = min_path_cover_reference(t);
    const ValidationReport rep = validate_path_cover(t, c, true);
    EXPECT_TRUE(rep.ok) << rep.error << " on " << t.format();
  }
}

TEST(Reference, PathCountAlwaysMatchesLemma24) {
  util::Rng rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 91000 + static_cast<unsigned>(trial);
    const Cotree t = cograph::random_cotree(1 + rng.below(80), opt);
    ReferenceTrace trace;
    (void)min_path_cover_reference(t, &trace);
    EXPECT_EQ(static_cast<std::int64_t>(trace.path_count),
              path_cover_size(t));
  }
}

}  // namespace
}  // namespace copath::core
