// The copathd wire protocol and serving tier, end to end:
//
//  * NetProtocol — pure codec coverage: golden frame bytes (the v1 layout
//    is a compatibility contract), handshake parsing, incremental frame
//    extraction under pathological fragmentation, oversized/zero-length
//    rejection, request/response round trips, truncation defense.
//  * Daemon — a real net::Server on an ephemeral loopback port driven by
//    net::Client and raw sockets: differential equivalence against an
//    in-process Service, pipelined out-of-order completion, malformed and
//    oversized frames answered structurally (connection survives or closes
//    per the protocol contract — the process never crashes), handshake
//    version refusal, invalid-signature refusal, graceful drain.
//
// The Daemon suite runs under TSan in CI (the loop thread, solver workers,
// and client threads share the completion queue and wake pipe).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "copath.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "testing.hpp"

namespace copath {
namespace {

namespace proto = net::protocol;
using proto::Status;
using proto::Verb;

std::string bytes(const char* data, std::size_t n) {
  return std::string(data, n);
}

// ---------------------------------------------------------- NetProtocol

TEST(NetProtocol, HelloGoldenBytesAndRoundTrip) {
  // v2 hello: "CPTH" magic (LE u32 0x48545043), version 2, reserved 0.
  EXPECT_EQ(proto::make_hello(), bytes("CPTH\x02\x00\x00\x00", 8));
  std::uint16_t version = 0;
  EXPECT_TRUE(proto::parse_hello(proto::make_hello(), &version));
  EXPECT_EQ(version, proto::kVersion);
  EXPECT_FALSE(proto::parse_hello(bytes("XPTH\x01\x00\x00\x00", 8),
                                  &version));
  EXPECT_FALSE(proto::parse_hello(bytes("CPTH\x01\x00\x00", 7), &version));

  Status status = Status::Ok;
  EXPECT_TRUE(proto::parse_hello_reply(
      proto::make_hello_reply(Status::VersionMismatch), &status, &version));
  EXPECT_EQ(status, Status::VersionMismatch);
  EXPECT_EQ(version, proto::kVersion);
}

TEST(NetProtocol, SolveRequestGoldenBytes) {
  std::string out;
  proto::WireOptions opts;  // flags = want-verdicts, backend 0
  proto::append_solve_request(out, Verb::SolveText, 7, opts, "(+ a b)");
  const std::string expected =
      bytes("\x14\x00\x00\x00", 4) +                       // frame length 20
      bytes("\x01", 1) +                                   // verb SolveText
      bytes("\x07\x00\x00\x00\x00\x00\x00\x00", 8) +       // seq 7
      bytes("\x01\x00\x00\x00", 4) +                       // options
      "(+ a b)";
  EXPECT_EQ(out, expected);
}

TEST(NetProtocol, DeadlineRidesBehindFlagAndV1FramesStillParse) {
  // A frame WITHOUT a deadline is byte-identical to the v1 encoding (the
  // golden test above) — that's the whole compatibility argument — and
  // decodes with deadline_ms == 0.
  std::string out;
  proto::WireOptions opts;
  proto::append_solve_request(out, Verb::SolveText, 7, opts, "(+ a b)");
  std::string payload;
  ASSERT_EQ(proto::extract_frame(out, &payload), proto::Extract::Frame);
  proto::Request req;
  ASSERT_TRUE(proto::parse_request(payload, &req));
  EXPECT_EQ(req.opts.flags & proto::kOptHasDeadline, 0u);
  EXPECT_EQ(req.deadline_ms, 0u);
  EXPECT_EQ(req.body, "(+ a b)");

  // With a deadline: kOptHasDeadline set, trailing u32 after the options
  // word, body undisturbed. The codec owns the flag — callers can't desync
  // flag and field.
  out.clear();
  proto::append_solve_request(out, Verb::SolveText, 8, opts, "(+ a b)",
                              /*deadline_ms=*/250);
  ASSERT_EQ(proto::extract_frame(out, &payload), proto::Extract::Frame);
  ASSERT_TRUE(proto::parse_request(payload, &req));
  EXPECT_NE(req.opts.flags & proto::kOptHasDeadline, 0u);
  EXPECT_EQ(req.deadline_ms, 250u);
  EXPECT_EQ(req.body, "(+ a b)");

  // Batch frames carry it the same way.
  out.clear();
  const proto::BatchItem items[] = {{false, "(+ a b)"}};
  proto::append_batch_request(out, 9, opts, items, /*deadline_ms=*/125);
  ASSERT_EQ(proto::extract_frame(out, &payload), proto::Extract::Frame);
  ASSERT_TRUE(proto::parse_request(payload, &req));
  EXPECT_EQ(req.verb, Verb::BatchSolve);
  EXPECT_EQ(req.deadline_ms, 125u);

  // A flagged frame truncated before the trailing u32 is malformed, not
  // a zero deadline.
  out.clear();
  proto::append_solve_request(out, Verb::SolveText, 10, opts, "x",
                              /*deadline_ms=*/250);
  ASSERT_EQ(proto::extract_frame(out, &payload), proto::Extract::Frame);
  payload.resize(payload.size() - 5);  // drop body byte + one deadline byte
  EXPECT_FALSE(proto::parse_request(payload, &req));
}

TEST(NetProtocol, CancelRequestGoldenBytesAndRoundTrip) {
  // v2 Cancel frame: verb u8 | seq u64 | target_seq u64, nothing else.
  std::string out;
  proto::append_cancel_request(out, /*seq=*/5, /*target_seq=*/3);
  const std::string expected =
      bytes("\x11\x00\x00\x00", 4) +                  // frame length 17
      bytes("\x08", 1) +                              // verb Cancel
      bytes("\x05\x00\x00\x00\x00\x00\x00\x00", 8) +  // seq 5
      bytes("\x03\x00\x00\x00\x00\x00\x00\x00", 8);   // target seq 3
  EXPECT_EQ(out, expected);

  std::string payload;
  ASSERT_EQ(proto::extract_frame(out, &payload), proto::Extract::Frame);
  proto::Request req;
  ASSERT_TRUE(proto::parse_request(payload, &req));
  EXPECT_EQ(req.verb, Verb::Cancel);
  EXPECT_EQ(req.seq, 5u);
  EXPECT_EQ(req.target_seq, 3u);

  // A short target and trailing garbage are both malformed, not lenient.
  EXPECT_FALSE(proto::parse_request(payload.substr(0, payload.size() - 1),
                                    &req));
  EXPECT_FALSE(proto::parse_request(payload + "x", &req));

  // The Cancelled status survives a response round trip.
  const std::string frame = proto::encode_status_response_frame(
      9, Verb::SolveText, Status::Cancelled, "cancelled");
  std::string rpayload;
  std::string stream = frame;
  ASSERT_EQ(proto::extract_frame(stream, &rpayload),
            proto::Extract::Frame);
  proto::Response res;
  ASSERT_TRUE(proto::parse_response(rpayload, &res));
  EXPECT_EQ(res.status, Status::Cancelled);
  EXPECT_EQ(res.error, "cancelled");
}

TEST(NetProtocol, FrameExtractionSurvivesBytewiseFragmentation) {
  // Three frames delivered one byte at a time must come out intact and in
  // order, with NeedMore at every incomplete boundary.
  std::string stream;
  proto::append_frame(stream, "alpha");
  proto::append_frame(stream, std::string(300, 'b'));
  proto::append_frame(stream, bytes("\x00\x01\x02", 3));

  std::string buf, payload;
  std::vector<std::string> frames;
  for (const char c : stream) {
    buf += c;
    for (;;) {
      const auto r = proto::extract_frame(buf, &payload);
      if (r != proto::Extract::Frame) {
        EXPECT_EQ(r, proto::Extract::NeedMore);
        break;
      }
      frames.push_back(payload);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "alpha");
  EXPECT_EQ(frames[1], std::string(300, 'b'));
  EXPECT_EQ(frames[2], bytes("\x00\x01\x02", 3));
  EXPECT_TRUE(buf.empty());
}

TEST(NetProtocol, ZeroAndOversizedLengthsAreCorruptNotAllocated) {
  std::string payload;
  std::string zero = bytes("\x00\x00\x00\x00junk", 8);
  EXPECT_EQ(proto::extract_frame(zero, &payload), proto::Extract::Corrupt);

  // Length prefix claiming kMaxFrameBytes + 1: corrupt immediately — the
  // extractor must not wait for (or reserve) 16 MiB.
  const std::uint32_t big = proto::kMaxFrameBytes + 1;
  std::string over;
  for (int i = 0; i < 4; ++i) {
    over += static_cast<char>((big >> (8 * i)) & 0xff);
  }
  EXPECT_EQ(proto::extract_frame(over, &payload), proto::Extract::Corrupt);

  // Exactly kMaxFrameBytes is legal framing — just not complete yet.
  std::string max;
  for (int i = 0; i < 4; ++i) {
    max += static_cast<char>((proto::kMaxFrameBytes >> (8 * i)) & 0xff);
  }
  EXPECT_EQ(proto::extract_frame(max, &payload), proto::Extract::NeedMore);
}

TEST(NetProtocol, RequestRoundTripAndRejection) {
  std::string out;
  proto::WireOptions wopts;
  wopts.flags = proto::kOptWantCycle | proto::kOptExplicitBackend;
  wopts.backend = 3;
  proto::append_solve_request(out, Verb::SolveSignature, 99, wopts, "sig");
  std::string payload;
  ASSERT_EQ(proto::extract_frame(out, &payload), proto::Extract::Frame);
  proto::Request req;
  ASSERT_TRUE(proto::parse_request(payload, &req));
  EXPECT_EQ(req.verb, Verb::SolveSignature);
  EXPECT_EQ(req.seq, 99u);
  EXPECT_EQ(req.opts, wopts);
  EXPECT_EQ(req.body, "sig");

  out.clear();
  proto::append_admin_request(out, Verb::Stats, 5);
  ASSERT_EQ(proto::extract_frame(out, &payload), proto::Extract::Frame);
  ASSERT_TRUE(proto::parse_request(payload, &req));
  EXPECT_EQ(req.verb, Verb::Stats);
  EXPECT_EQ(req.seq, 5u);
  EXPECT_TRUE(req.body.empty());

  // Rejections: empty, unknown verb, truncated header, truncated options,
  // empty solve body, admin verb with trailing junk.
  EXPECT_FALSE(proto::parse_request("", &req));
  EXPECT_FALSE(proto::parse_request(
      bytes("\xc8\x01\x00\x00\x00\x00\x00\x00\x00", 9), &req));
  EXPECT_FALSE(proto::parse_request(bytes("\x01\x01\x00", 3), &req));
  EXPECT_FALSE(proto::parse_request(
      bytes("\x01\x01\x00\x00\x00\x00\x00\x00\x00\x01", 10), &req));
  EXPECT_FALSE(proto::parse_request(
      bytes("\x01\x01\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00", 13),
      &req));
  EXPECT_FALSE(proto::parse_request(
      bytes("\x04\x01\x00\x00\x00\x00\x00\x00\x00x", 10), &req));
}

SolveResult make_result() {
  SolveResult res;
  res.ok = true;
  res.vertex_count = 6;
  res.optimal_size = 2;
  res.minimum = true;
  res.hamiltonian_path = false;
  res.hamiltonian_cycle = false;
  res.wall_ms = 1.25;
  res.cover.paths = {{0, 2, 4}, {1, 3, 5}};
  res.cycle = std::vector<cograph::VertexId>{0, 1, 2, 3, 4, 5};
  return res;
}

TEST(NetProtocol, SolveResponseRoundTrip) {
  const SolveResult res = make_result();
  std::string frame = proto::encode_solve_response_frame(
      42, Verb::SolveSignature, Status::Ok, &res, {});
  std::string payload;
  ASSERT_EQ(proto::extract_frame(frame, &payload), proto::Extract::Frame);
  proto::Response out;
  ASSERT_TRUE(proto::parse_response(payload, &out));
  EXPECT_EQ(out.verb, Verb::SolveSignature);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.status, Status::Ok);
  EXPECT_TRUE(out.result.ok);
  EXPECT_TRUE(out.result.minimum);
  EXPECT_TRUE(out.result.has_verdicts);
  EXPECT_EQ(out.result.vertex_count, 6u);
  EXPECT_EQ(out.result.optimal_size, 2);
  EXPECT_DOUBLE_EQ(out.result.wall_ms, 1.25);
  ASSERT_EQ(out.result.paths.size(), 2u);
  EXPECT_EQ(out.result.paths[0], (std::vector<std::uint32_t>{0, 2, 4}));
  EXPECT_EQ(out.result.paths[1], (std::vector<std::uint32_t>{1, 3, 5}));
  ASSERT_TRUE(out.result.cycle.has_value());
  EXPECT_EQ(out.result.cycle->size(), 6u);
}

TEST(NetProtocol, ErrorAndStatsResponsesRoundTrip) {
  std::string frame = proto::encode_status_response_frame(
      9, Verb::SolveText, Status::SolveError, "boom");
  std::string payload;
  ASSERT_EQ(proto::extract_frame(frame, &payload), proto::Extract::Frame);
  proto::Response out;
  ASSERT_TRUE(proto::parse_response(payload, &out));
  EXPECT_EQ(out.status, Status::SolveError);
  EXPECT_EQ(out.error, "boom");

  const std::pair<std::string_view, std::uint64_t> counters[] = {
      {"cache_hits", 17}, {"completed", 40}};
  frame = proto::encode_stats_response_frame(3, counters);
  ASSERT_EQ(proto::extract_frame(frame, &payload), proto::Extract::Frame);
  ASSERT_TRUE(proto::parse_response(payload, &out));
  EXPECT_EQ(out.verb, Verb::Stats);
  ASSERT_EQ(out.stats.size(), 2u);
  EXPECT_EQ(out.stats[0].first, "cache_hits");
  EXPECT_EQ(out.stats[0].second, 17u);
  EXPECT_EQ(out.stats[1].first, "completed");
  EXPECT_EQ(out.stats[1].second, 40u);
}

TEST(NetProtocol, TruncatedSolveResponsesAreRejected) {
  const SolveResult res = make_result();
  std::string frame = proto::encode_solve_response_frame(
      1, Verb::SolveText, Status::Ok, &res, {});
  std::string payload;
  ASSERT_EQ(proto::extract_frame(frame, &payload), proto::Extract::Frame);
  proto::Response out;
  ASSERT_TRUE(proto::parse_response(payload, &out));
  // Every strict prefix must be rejected — the decoder demands exact
  // consumption, so truncation can never silently yield fewer paths.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        proto::parse_response(std::string_view(payload).substr(0, cut),
                              &out))
        << "prefix of " << cut << " bytes decoded";
  }
}

// --------------------------------------------------------------- Daemon

/// A serving daemon on an ephemeral port, drained on destruction.
struct DaemonFixture {
  explicit DaemonFixture(net::Server::Options opts = {}) {
    opts.port = 0;
    server = std::make_unique<net::Server>(std::move(opts));
    thread = std::thread([this] { server->run(); });
  }
  ~DaemonFixture() {
    if (server != nullptr) {
      server->request_drain();
      thread.join();
    }
  }
  [[nodiscard]] net::Client connect() const {
    return net::Client("127.0.0.1", server->port());
  }

  std::unique_ptr<net::Server> server;
  std::thread thread;
};

/// Raw socket with a completed handshake — for crafting hostile bytes the
/// Client API refuses to produce.
struct RawConn {
  explicit RawConn(std::uint16_t port,
                   std::uint16_t version = proto::kVersion) {
    fd = net::connect_tcp("127.0.0.1", port);
    std::string hello;
    hello += "CPTH";
    hello += static_cast<char>(version & 0xff);
    hello += static_cast<char>(version >> 8);
    hello += bytes("\x00\x00", 2);
    net::write_all(fd.get(), hello.data(), hello.size());
    char reply[proto::kHelloReplyBytes];
    EXPECT_TRUE(net::read_exact(fd.get(), reply, sizeof(reply)));
    EXPECT_TRUE(proto::parse_hello_reply(
        std::string_view(reply, sizeof(reply)), &status, &peer_version));
  }

  void send(std::string_view data) {
    net::write_all(fd.get(), data.data(), data.size());
  }

  /// Blocking read of one response frame's parsed payload.
  proto::Response read_response() {
    std::uint8_t header[4];
    EXPECT_TRUE(net::read_exact(fd.get(), header, sizeof(header)));
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i) len = (len << 8) | header[i];
    std::string payload(len, '\0');
    EXPECT_TRUE(net::read_exact(fd.get(), payload.data(), payload.size()));
    proto::Response res;
    EXPECT_TRUE(proto::parse_response(payload, &res));
    return res;
  }

  /// True when the server has closed the connection cleanly.
  bool at_eof() {
    char c;
    return !net::read_exact(fd.get(), &c, 1);
  }

  net::Fd fd;
  Status status = Status::Ok;
  std::uint16_t peer_version = 0;
};

void expect_valid_cover(const proto::WireResult& r, std::size_t n) {
  std::vector<std::uint32_t> seen;
  for (const auto& path : r.paths) {
    EXPECT_FALSE(path.empty());
    seen.insert(seen.end(), path.begin(), path.end());
  }
  std::sort(seen.begin(), seen.end());
  std::vector<std::uint32_t> want(n);
  std::iota(want.begin(), want.end(), 0u);
  EXPECT_EQ(seen, want);  // every vertex exactly once
}

TEST(Daemon, TextAndSignatureDifferentialAgainstInProcessService) {
  DaemonFixture daemon;
  net::Client cli = daemon.connect();
  Service svc;
  for (unsigned trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + trial * 17 % 160;
    const Cotree t = testing::random_cotree(n, 90000 + trial);
    const std::string text = t.format();
    const auto form = canonical_form(t, /*with_algebra_key=*/false);

    const SolveResult local =
        svc.submit({Instance::text(text), {}, {}}).get();
    ASSERT_TRUE(local.ok) << local.error;

    const proto::Response rt = cli.solve_text(text);
    ASSERT_EQ(rt.status, Status::Ok) << rt.error;
    ASSERT_TRUE(rt.result.ok);
    const proto::Response rs = cli.solve_signature(form.signature);
    ASSERT_EQ(rs.status, Status::Ok) << rs.error;
    ASSERT_TRUE(rs.result.ok);

    for (const proto::Response* r : {&rt, &rs}) {
      EXPECT_EQ(r->result.vertex_count, local.vertex_count);
      EXPECT_EQ(r->result.optimal_size, local.optimal_size);
      EXPECT_EQ(r->result.minimum, local.minimum);
      EXPECT_EQ(r->result.hamiltonian_path, local.hamiltonian_path);
      EXPECT_EQ(r->result.hamiltonian_cycle, local.hamiltonian_cycle);
      EXPECT_EQ(r->result.paths.size(), local.cover.paths.size());
      expect_valid_cover(r->result, n);
    }
  }
  // The signature requests must have hit the entries their text twins
  // populated: same canonical identity, same options.
  const proto::Response st = cli.stats();
  std::uint64_t hits = 0;
  for (const auto& [k, v] : st.stats) {
    if (k == "cache_hits") hits = v;
  }
  EXPECT_GE(hits, 12u);
}

TEST(Daemon, HamiltonianCycleTravelsTheWire) {
  DaemonFixture daemon;
  net::Client cli = daemon.connect();
  proto::WireOptions opts;
  opts.flags = proto::kOptWantVerdicts | proto::kOptWantCycle;
  const proto::Response res = cli.solve_text("(* a b c)", opts);
  ASSERT_EQ(res.status, Status::Ok) << res.error;
  EXPECT_TRUE(res.result.hamiltonian_cycle);
  ASSERT_TRUE(res.result.cycle.has_value());
  EXPECT_EQ(res.result.cycle->size(), 3u);
  expect_valid_cover(res.result, 3);
}

TEST(Daemon, PipelinedResponsesArriveInCompletionOrder) {
  // A custom backend that sleeps on large instances: submit slow-then-fast
  // on one connection and the fast response must overtake the slow one —
  // the protocol's completion-order contract, exercised for real.
  const auto sleepy = static_cast<Backend>(211);
  BackendRegistry::instance().add(
      sleepy, "sleepy-by-size",
      [](const Cotree& t, const core::BackendConfig&) {
        if (t.vertex_count() >= 16) {
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
        }
        core::BackendOutput out;
        for (std::size_t v = 0; v < t.vertex_count(); ++v) {
          out.cover.paths.push_back({static_cast<VertexId>(v)});
        }
        return out;
      },
      /*exact=*/false);

  net::Server::Options sopts;
  sopts.service.workers = 4;  // the two jobs must truly run concurrently
  DaemonFixture daemon(std::move(sopts));
  net::Client cli = daemon.connect();

  proto::WireOptions wopts;
  wopts.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
  wopts.backend = 211;
  const std::string slow = testing::random_cotree(64, 1).format();
  const std::string fast = testing::random_cotree(4, 2).format();
  const std::uint64_t slow_seq = cli.send_solve_text(slow, wopts);
  const std::uint64_t fast_seq = cli.send_solve_text(fast, wopts);
  cli.flush();

  const proto::Response first = cli.recv();
  const proto::Response second = cli.recv();
  EXPECT_EQ(first.seq, fast_seq);
  EXPECT_EQ(second.seq, slow_seq);
  EXPECT_EQ(first.status, Status::Ok);
  EXPECT_EQ(second.status, Status::Ok);
}

TEST(Daemon, MalformedPayloadGetsBadFrameAndConnectionSurvives) {
  DaemonFixture daemon;
  RawConn raw(daemon.server->port());
  ASSERT_EQ(raw.status, Status::Ok);

  // A framed payload that is not a request (unknown verb, short header).
  std::string frame;
  proto::append_frame(frame, bytes("\xff\x01", 2));
  raw.send(frame);
  const proto::Response bad = raw.read_response();
  EXPECT_EQ(bad.status, Status::BadFrame);
  EXPECT_FALSE(bad.error.empty());

  // The connection is still serviceable afterwards.
  frame.clear();
  proto::append_admin_request(frame, Verb::Health, 2);
  raw.send(frame);
  const proto::Response ok = raw.read_response();
  EXPECT_EQ(ok.status, Status::Ok);
  EXPECT_EQ(ok.seq, 2u);
}

TEST(Daemon, MalformedRequestKeepsItsSequenceId) {
  DaemonFixture daemon;
  RawConn raw(daemon.server->port());
  // verb 200 (unknown) but a complete 9-byte header: the error response
  // must echo seq 77 so a pipelining client can correlate the failure.
  std::string payload = bytes("\xc8", 1);
  payload += bytes("\x4d\x00\x00\x00\x00\x00\x00\x00", 8);
  std::string frame;
  proto::append_frame(frame, payload);
  raw.send(frame);
  const proto::Response res = raw.read_response();
  EXPECT_EQ(res.status, Status::BadFrame);
  EXPECT_EQ(res.seq, 77u);
}

TEST(Daemon, OversizedLengthPrefixAnswersThenCloses) {
  DaemonFixture daemon;
  RawConn raw(daemon.server->port());
  const std::uint32_t big = proto::kMaxFrameBytes + 1;
  std::string header;
  for (int i = 0; i < 4; ++i) {
    header += static_cast<char>((big >> (8 * i)) & 0xff);
  }
  raw.send(header);
  const proto::Response res = raw.read_response();
  EXPECT_EQ(res.status, Status::BadFrame);
  EXPECT_TRUE(raw.at_eof());  // the stream is poisoned: server hangs up
}

TEST(Daemon, RequestsSurviveBytewiseDelivery) {
  // The server's frame reassembly must tolerate arbitrarily fragmented
  // TCP delivery: one valid request trickled a few bytes at a time.
  DaemonFixture daemon;
  RawConn raw(daemon.server->port());
  std::string frame;
  proto::WireOptions wopts;
  proto::append_solve_request(frame, Verb::SolveText, 31, wopts,
                              "(* (+ a b) c)");
  for (std::size_t i = 0; i < frame.size(); i += 3) {
    raw.send(std::string_view(frame).substr(i, 3));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const proto::Response res = raw.read_response();
  EXPECT_EQ(res.status, Status::Ok);
  EXPECT_EQ(res.seq, 31u);
  expect_valid_cover(res.result, 3);
}

TEST(Daemon, WrongVersionIsRefusedAtHandshake) {
  DaemonFixture daemon;
  RawConn raw(daemon.server->port(), /*version=*/99);
  EXPECT_EQ(raw.status, Status::VersionMismatch);
  EXPECT_TRUE(raw.at_eof());
}

TEST(Daemon, InvalidSignatureIsRefusedStructurally) {
  DaemonFixture daemon;
  net::Client cli = daemon.connect();
  // Truncated LEB128: leaf, leaf, join tag, then nothing.
  const proto::Response res =
      cli.solve_signature(bytes("\x00\x00\x02", 3));
  EXPECT_EQ(res.status, Status::InvalidSignature);
  EXPECT_NE(res.error.find("truncated"), std::string::npos) << res.error;
  // Refusal is per-request, not per-connection.
  EXPECT_EQ(cli.health().status, Status::Ok);
}

TEST(Daemon, UnregisteredBackendFailsStructurally) {
  DaemonFixture daemon;
  net::Client cli = daemon.connect();
  proto::WireOptions wopts;
  wopts.flags = proto::kOptWantVerdicts | proto::kOptExplicitBackend;
  wopts.backend = 250;  // nobody registers this id
  const proto::Response res = cli.solve_text("(+ a b)", wopts);
  EXPECT_EQ(res.status, Status::SolveError);
  EXPECT_FALSE(res.error.empty());
  EXPECT_EQ(cli.health().status, Status::Ok);
}

TEST(Daemon, DrainAcknowledgesThenStopsTheServer) {
  auto server = std::make_unique<net::Server>([] {
    net::Server::Options opts;
    opts.port = 0;
    return opts;
  }());
  const std::uint16_t port = server->port();
  std::thread loop([&server] { server->run(); });
  {
    net::Client cli("127.0.0.1", port);
    ASSERT_EQ(cli.solve_text("(+ a b)").status, Status::Ok);
    EXPECT_EQ(cli.drain().status, Status::Ok);
  }
  loop.join();  // run() returns exactly when the drain completes
  server.reset();
  // The port is released: a fresh connection attempt must be refused.
  EXPECT_THROW(net::Client("127.0.0.1", port), util::CheckError);
}

TEST(Daemon, OlderProtocolVersionIsStillAccepted) {
  // The v2 server accepts the whole [kMinVersion, kVersion] range: a v1
  // client (no deadline field anywhere) handshakes and solves unchanged.
  DaemonFixture daemon;
  RawConn raw(daemon.server->port(), /*version=*/1);
  ASSERT_EQ(raw.status, Status::Ok);
  EXPECT_EQ(raw.peer_version, proto::kVersion);

  std::string out;
  proto::append_solve_request(out, Verb::SolveText, 3, {}, "(+ a b)");
  raw.send(out);
  const proto::Response res = raw.read_response();
  EXPECT_EQ(res.seq, 3u);
  EXPECT_EQ(res.status, Status::Ok);
  EXPECT_EQ(res.result.vertex_count, 2u);
}

TEST(Daemon, HealthV1ReplyIsTheLegacyEmptyOkFrameByteForByte) {
  // A v1 client's Health probe must get EXACTLY the bytes the previous
  // release sent — the empty-body Ok status frame — because v1 parsers
  // reject unexpected bodies. The golden literal (not the encoder) is the
  // contract.
  DaemonFixture daemon;
  RawConn raw(daemon.server->port(), /*version=*/1);
  ASSERT_EQ(raw.status, Status::Ok);

  std::string out;
  proto::append_admin_request(out, Verb::Health, 6);
  raw.send(out);
  std::string reply(4 + 10, '\0');
  ASSERT_TRUE(net::read_exact(raw.fd.get(), reply.data(), reply.size()));
  const std::string expected =
      bytes("\x0a\x00\x00\x00", 4) +                  // frame length 10
      bytes("\x04", 1) +                              // verb Health
      bytes("\x06\x00\x00\x00\x00\x00\x00\x00", 8) +  // seq 6
      bytes("\x00", 1);                               // status Ok, no body
  EXPECT_EQ(reply, expected);
}

TEST(Daemon, HealthV2CarriesTheDegradedStateCounters) {
  DaemonFixture daemon;
  net::Client cli = daemon.connect();
  const proto::Response res = cli.health();
  ASSERT_EQ(res.status, Status::Ok) << res.error;
  ASSERT_FALSE(res.stats.empty());
  const auto has = [&res](std::string_view key) {
    for (const auto& [k, v] : res.stats) {
      if (k == key) return true;
    }
    return false;
  };
  for (const char* key :
       {"draining", "queue_depth", "in_flight", "parked_now",
        "parked_bytes", "parked_refused", "shed_expired", "cancelled",
        "watchdog_cancels", "stuck_workers", "l2_enabled"}) {
    EXPECT_TRUE(has(key)) << key;
  }
  // An idle just-started server is unambiguously healthy.
  for (const auto& [k, v] : res.stats) {
    if (k == "draining" || k == "in_flight" || k == "stuck_workers") {
      EXPECT_EQ(v, 0u) << k;
    }
  }
}

TEST(Daemon, CancelOfAnUnknownSeqIsAnIdempotentOkAck) {
  // Cancelling a finished (or never-sent) seq is a benign race by
  // contract: an Ok ack, the connection stays healthy.
  DaemonFixture daemon;
  net::Client cli = daemon.connect();
  const std::uint64_t cseq = cli.send_cancel(/*target_seq=*/424242);
  cli.flush();
  const proto::Response ack = cli.recv();
  EXPECT_EQ(ack.seq, cseq);
  EXPECT_EQ(ack.verb, Verb::Cancel);
  EXPECT_EQ(ack.status, Status::Ok);
  EXPECT_EQ(cli.solve_text("(+ a b)").status, Status::Ok);
}

}  // namespace
}  // namespace copath
