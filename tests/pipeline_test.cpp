// Theorem 5.3: the PRAM pipeline — validity, minimality, EREW discipline
// (the machine *checks* it), cost bounds, and engine/worker invariance.
// The engine-level sweeps drive min_path_cover_pram on an explicit machine;
// the behavioural tests go through the copath::Solver facade.
#include <gtest/gtest.h>

#include "cograph/families.hpp"
#include "copath_solver.hpp"
#include "core/count.hpp"
#include "core/pipeline.hpp"
#include "util/rng.hpp"

namespace copath::core {
namespace {

using cograph::Cotree;
using cograph::RandomCotreeOptions;
using pram::Machine;
using pram::Policy;

struct Shape {
  std::size_t n;
  std::size_t procs;
  std::size_t workers;
  par::RankEngine engine;
};

class PipelineSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(PipelineSweep, ValidMinimalAndEREWClean) {
  const auto [nmax, procs, workers, engine] = GetParam();
  util::Rng rng(nmax * 7 + procs);
  for (int trial = 0; trial < 10; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = nmax * 1000 + static_cast<unsigned>(trial);
    opt.skew = (trial % 3) * 0.4;
    const Cotree t = cograph::random_cotree(1 + rng.below(nmax), opt);
    Machine m({Policy::EREW, workers, procs});
    PipelineOptions popt;
    popt.rank_engine = engine;
    PipelineTrace trace;
    PathCover c;
    ASSERT_NO_THROW(c = min_path_cover_pram(m, t, popt, &trace))
        << "EREW violation or convergence failure on " << t.format();
    const ValidationReport rep = validate_path_cover(t, c, true);
    ASSERT_TRUE(rep.ok) << rep.error << "\n" << t.format();
    EXPECT_EQ(static_cast<std::int64_t>(c.paths.size()),
              path_cover_size(t));
    EXPECT_LE(trace.repair_rounds, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineSweep,
    ::testing::Values(Shape{6, 1, 1, par::RankEngine::Contract},
                      Shape{30, 4, 1, par::RankEngine::Contract},
                      Shape{30, 4, 1, par::RankEngine::Wyllie},
                      Shape{90, 16, 1, par::RankEngine::Contract},
                      Shape{90, 16, 2, par::RankEngine::Contract},
                      Shape{150, 8, 4, par::RankEngine::Contract},
                      // procs = 0: every pfor is ONE maximally parallel
                      // checked step — no cross-item access can hide in
                      // Brent chunking. This is exactly the EREW-clean
                      // property exec::Native's direct one-pass execution
                      // relies on (see exec/native.hpp).
                      Shape{60, 0, 1, par::RankEngine::Contract},
                      Shape{60, 0, 2, par::RankEngine::Wyllie}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.n) + "_p" +
             std::to_string(info.param.procs) + "_w" +
             std::to_string(info.param.workers) +
             (info.param.engine == par::RankEngine::Contract ? "_c" : "_w");
    });

TEST(Pipeline, SingleVertexAndPairs) {
  Machine m({Policy::EREW, 1, 2});
  EXPECT_EQ(min_path_cover_pram(m, Cotree::parse("a")).paths.size(), 1u);
  EXPECT_EQ(min_path_cover_pram(m, Cotree::parse("(* a b)")).paths.size(),
            1u);
  EXPECT_EQ(min_path_cover_pram(m, Cotree::parse("(+ a b)")).paths.size(),
            2u);
}

TEST(Pipeline, FamiliesValidMinimalThroughSolver) {
  SolveOptions opts;
  opts.backend = Backend::Pram;
  opts.processors = 8;
  opts.validate = true;
  const Solver solver(opts);
  for (const auto& t :
       {cograph::clique(20), cograph::independent_set(11),
        cograph::star(10), cograph::complete_bipartite(7, 4),
        cograph::complete_multipartite({5, 4, 2}),
        cograph::threshold_graph({1, 1, 0, 1, 0, 0, 1}),
        cograph::caterpillar(41, cograph::NodeKind::Join),
        cograph::caterpillar(40, cograph::NodeKind::Union),
        cograph::paper_fig10()}) {
    const SolveResult res = solver.solve(Instance::view(t));
    ASSERT_TRUE(res.ok) << res.error << " on " << t.format();
    EXPECT_TRUE(res.validation.ok)
        << res.validation.error << " on " << t.format();
    EXPECT_TRUE(res.minimum) << t.format();
  }
}

TEST(Pipeline, WorkerCountDoesNotChangeResult) {
  RandomCotreeOptions opt;
  opt.seed = 4321;
  const Cotree t = cograph::random_cotree(90, opt);
  std::vector<std::vector<VertexId>> first;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SolveOptions opts;
    opts.backend = Backend::Pram;
    opts.processors = 8;
    opts.workers = workers;
    const SolveResult res = Solver(opts).solve(Instance::view(t));
    ASSERT_TRUE(res.ok) << res.error;
    if (first.empty()) {
      first = res.cover.paths;
    } else {
      EXPECT_EQ(res.cover.paths, first) << "workers=" << workers;
    }
  }
}

TEST(Pipeline, TraceReportsPlausibleNumbers) {
  RandomCotreeOptions opt;
  opt.seed = 7;
  const Cotree t = cograph::random_cotree(64, opt);
  SolveOptions opts;
  opts.backend = Backend::Pram;
  opts.processors = 8;
  opts.collect_trace = true;
  const SolveResult res = Solver(opts).solve(Instance::view(t));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.trace_valid);
  EXPECT_GT(res.trace.bracket_length, 3 * 64u - 1);
  EXPECT_LE(res.trace.bracket_length, 7 * 64u);
  EXPECT_EQ(res.trace.path_count, res.cover.size());
}

TEST(Pipeline, ConvenienceWrapperReportsStats) {
  RandomCotreeOptions opt;
  opt.seed = 99;
  const Cotree t = cograph::random_cotree(120, opt);
  pram::Stats stats;
  const PathCover c = min_path_cover_parallel(t, 1, &stats);
  EXPECT_TRUE(validate_path_cover(t, c, true).ok);
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.work, stats.steps);
}

TEST(PipelineCost, Theorem53Bound) {
  // O(log n) steps and O(n) work with P = n / log2 n (generous constants;
  // the benches report the exact measurements).
  RandomCotreeOptions opt;
  opt.seed = 1;
  const std::size_t n = 1 << 12;
  const Cotree t = cograph::random_cotree(n, opt);
  Machine m({Policy::Unchecked, 1, n / 12});
  (void)min_path_cover_pram(m, t);
  EXPECT_LE(m.stats().steps, 3000 * 12);
  EXPECT_LE(m.stats().work, 4000 * n);
}

TEST(PipelineCost, StepsGrowLogarithmically) {
  // Doubling n with P = n/log n should increase steps by roughly a
  // constant, not double them.
  RandomCotreeOptions opt;
  opt.seed = 2;
  std::uint64_t prev = 0;
  for (const std::size_t logn : {10u, 11u, 12u}) {
    const std::size_t n = std::size_t{1} << logn;
    const Cotree t = cograph::random_cotree(n, opt);
    Machine m({Policy::Unchecked, 1, n / logn});
    (void)min_path_cover_pram(m, t);
    const std::uint64_t steps = m.stats().steps;
    if (prev != 0) {
      EXPECT_LT(steps, prev * 3 / 2)
          << "steps should grow ~ log n, not linearly";
    }
    prev = steps;
  }
}

}  // namespace
}  // namespace copath::core
