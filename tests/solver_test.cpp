// The copath::Solver facade: every registered backend on the generator
// families, structured results, graph/text/cotree input routing, the
// backend registry, count-only solves, and batch-vs-single equality.
// Instances come from the shared property-test harness (tests/testing.hpp).
#include <gtest/gtest.h>

#include <algorithm>

#include "copath.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

std::vector<cograph::Cotree> family_instances() {
  return testing::small_families();
}

TEST(Registry, AllBuiltinsRegisteredWithRoundTrippingNames) {
  auto& reg = BackendRegistry::instance();
  const auto ids = reg.registered();
  for (const Backend b :
       {Backend::Sequential, Backend::Parallel, Backend::Pram,
        Backend::BruteForce, Backend::Greedy, Backend::NaiveParallel,
        Backend::Reference, Backend::Native}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), b), ids.end())
        << core::to_string(b);
    const auto entry = reg.find(b);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->name, core::to_string(b));
    EXPECT_EQ(reg.find(entry->name), entry);
    EXPECT_EQ(core::backend_from_string(core::to_string(b)), b);
  }
  EXPECT_EQ(core::backend_from_string("no-such-backend"), std::nullopt);
  EXPECT_EQ(reg.find("no-such-backend"), nullptr);
}

TEST(Registry, CustomBackendPlugsInWithoutTouchingCallers) {
  // A downstream engine: registers under an unused id, then every Solver
  // reaches it. Singleton-paths is a valid (rarely minimum) cover.
  const auto custom = static_cast<Backend>(200);
  BackendRegistry::instance().add(
      custom, "singletons",
      [](const Cotree& t, const core::BackendConfig&) {
        core::BackendOutput out;
        for (std::size_t v = 0; v < t.vertex_count(); ++v) {
          out.cover.paths.push_back({static_cast<VertexId>(v)});
        }
        return out;
      },
      /*exact=*/false);
  SolveOptions opts;
  opts.backend = custom;
  opts.validate = true;
  const Solver solver(opts);
  const auto res =
      solver.solve(Instance::cotree(cograph::independent_set(5)));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.cover.size(), 5u);
  EXPECT_TRUE(res.validation.ok) << res.validation.error;
  EXPECT_TRUE(res.minimum);  // on the empty graph singletons are minimum
}

TEST(Solve, EveryBackendOnEveryFamily) {
  for (const Backend b :
       {Backend::Sequential, Backend::Parallel, Backend::Pram,
        Backend::BruteForce, Backend::Greedy, Backend::NaiveParallel,
        Backend::Reference, Backend::Native}) {
    for (const auto& t : family_instances()) {
      if (b == Backend::BruteForce && t.vertex_count() > 14) continue;
      SolveOptions opts;
      opts.backend = b;
      opts.validate = true;
      const Solver solver(opts);
      const auto res = solver.solve(Instance::view(t));
      ASSERT_TRUE(res.ok) << core::to_string(b) << ": " << res.error;
      EXPECT_EQ(res.backend, b);
      EXPECT_EQ(res.vertex_count, t.vertex_count());
      EXPECT_EQ(res.cover.vertex_total(), t.vertex_count());
      EXPECT_TRUE(res.validation.ok)
          << core::to_string(b) << ": " << res.validation.error;
      EXPECT_EQ(res.optimal_size, path_cover_size(t));
      if (b != Backend::Greedy) {
        EXPECT_TRUE(res.minimum) << core::to_string(b);
        EXPECT_EQ(static_cast<std::int64_t>(res.cover.size()),
                  res.optimal_size);
      } else {
        EXPECT_GE(static_cast<std::int64_t>(res.cover.size()),
                  res.optimal_size);
      }
      EXPECT_EQ(res.hamiltonian_path, has_hamiltonian_path(t));
      EXPECT_EQ(res.hamiltonian_cycle, has_hamiltonian_cycle(t));
    }
  }
}

TEST(Solve, StructuredResultsCarryStatsAndTrace) {
  const Cotree t = testing::random_cotree(80, 5);
  SolveOptions opts;
  opts.backend = Backend::Pram;
  opts.collect_trace = true;
  const Solver solver(opts);
  const auto res = solver.solve(Instance::view(t));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.stats_valid);
  EXPECT_GT(res.stats.steps, 0u);
  EXPECT_GT(res.stats.work, res.stats.steps);
  EXPECT_TRUE(res.trace_valid);
  EXPECT_EQ(res.trace.path_count, res.cover.size());
  EXPECT_GT(res.trace.bracket_length, 0u);
  EXPECT_FALSE(res.trace.stages.empty());
  EXPECT_GE(res.wall_ms, 0.0);

  // Host backends report no machine stats.
  SolveOptions seq;
  seq.backend = Backend::Sequential;
  const auto sres = Solver(seq).solve(Instance::view(t));
  ASSERT_TRUE(sres.ok);
  EXPECT_FALSE(sres.stats_valid);
}

TEST(Solve, PramOptionsAreHonored) {
  const Cotree t = testing::random_cotree(100, 12);
  // Explicit processor budget changes the simulated step count.
  SolveOptions wide;
  wide.backend = Backend::Pram;
  wide.policy = pram::Policy::Unchecked;
  wide.processors = t.vertex_count();
  SolveOptions narrow = wide;
  narrow.processors = 2;
  const auto rw = Solver(wide).solve(Instance::view(t));
  const auto rn = Solver(narrow).solve(Instance::view(t));
  ASSERT_TRUE(rw.ok && rn.ok);
  EXPECT_LT(rw.stats.steps, rn.stats.steps);
  EXPECT_EQ(rw.cover.paths, rn.cover.paths);
  // Rank engine selection reaches the pipeline.
  SolveOptions wyllie = wide;
  wyllie.pipeline.rank_engine = par::RankEngine::Wyllie;
  const auto rwy = Solver(wyllie).solve(Instance::view(t));
  ASSERT_TRUE(rwy.ok) << rwy.error;
  EXPECT_EQ(rwy.cover.size(), rw.cover.size());
}

TEST(Solve, TextAndGraphInputsRouteToTheSameAnswer) {
  const std::string algebra = "(* (+ (* a b) c) (+ d e f))";
  const Cotree t = Cotree::parse(algebra);
  const Graph g = Graph::from_cotree(t);

  const Solver solver;
  const auto from_text = solver.solve(Instance::text(algebra));
  const auto from_tree = solver.solve(Instance::view(t));
  const auto from_graph = solver.solve(Instance::graph(g));
  ASSERT_TRUE(from_text.ok) << from_text.error;
  ASSERT_TRUE(from_tree.ok) << from_tree.error;
  ASSERT_TRUE(from_graph.ok) << from_graph.error;
  EXPECT_EQ(from_text.optimal_size, from_tree.optimal_size);
  EXPECT_EQ(from_graph.optimal_size, from_tree.optimal_size);
  EXPECT_EQ(from_text.cover.paths, from_tree.cover.paths);
  // Graph-routed vertex ids coincide with the input graph's, so the cover
  // must be valid against the raw edge list too.
  for (const auto& p : from_graph.cover.paths) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
    }
  }
}

TEST(Solve, GraphRoutingSweepAcrossRandomCographs) {
  util::Rng rng(99);
  const Solver solver;
  for (int trial = 0; trial < 25; ++trial) {
    const Cotree t = testing::random_cotree(
        2 + rng.below(40), 9000 + static_cast<unsigned>(trial));
    const auto res = solver.solve(Instance::graph(Graph::from_cotree(t)));
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(static_cast<std::int64_t>(res.cover.size()),
              path_cover_size(t));
  }
}

TEST(Solve, NonCographReportsP4Witness) {
  Graph p4(4);  // the forbidden subgraph itself
  p4.add_edge(0, 1);
  p4.add_edge(1, 2);
  p4.add_edge(2, 3);
  p4.finalize();
  const Solver solver;
  const auto res = solver.solve(Instance::graph(p4));
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("P4"), std::string::npos) << res.error;
}

TEST(Solve, ErrorsAreStructuredNotThrown) {
  const Solver solver;
  const auto bad_text = solver.solve(Instance::text("(* a"));
  EXPECT_FALSE(bad_text.ok);
  EXPECT_FALSE(bad_text.error.empty());

  const auto empty = solver.solve(SolveRequest{});
  EXPECT_FALSE(empty.ok);
  EXPECT_NE(empty.error.find("empty"), std::string::npos) << empty.error;

  SolveOptions opts;
  opts.backend = Backend::BruteForce;  // refuses large n
  const auto too_big =
      Solver(opts).solve(Instance::cotree(cograph::clique(64)));
  EXPECT_FALSE(too_big.ok);
  EXPECT_NE(too_big.error.find("brute-force"), std::string::npos)
      << too_big.error;
}

TEST(Solve, HamiltonianCycleConstructionOnRequest) {
  SolveOptions opts;
  opts.want_hamiltonian_cycle = true;
  const Solver solver(opts);
  const Cotree yes = cograph::complete_bipartite(4, 4);
  const auto rv = solver.solve(Instance::view(yes));
  ASSERT_TRUE(rv.ok);
  EXPECT_TRUE(rv.hamiltonian_cycle);
  ASSERT_TRUE(rv.cycle.has_value());
  EXPECT_EQ(rv.cycle->size(), yes.vertex_count());
  const cograph::CotreeAdjacency adj(yes);
  for (std::size_t i = 0; i < rv.cycle->size(); ++i) {
    EXPECT_TRUE(adj.adjacent((*rv.cycle)[i],
                             (*rv.cycle)[(i + 1) % rv.cycle->size()]));
  }
  const auto rn = solver.solve(Instance::cotree(cograph::star(5)));
  ASSERT_TRUE(rn.ok);
  EXPECT_FALSE(rn.hamiltonian_cycle);
  EXPECT_FALSE(rn.cycle.has_value());
}

TEST(Solve, VerdictOptOutSkipsTheHostSweepsButKeepsTheCover) {
  const Cotree t = testing::random_cotree(60, 21);
  SolveOptions opts;
  opts.compute_verdicts = false;
  const auto res = Solver(opts).solve(Instance::view(t));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.optimal_size, -1);
  EXPECT_FALSE(res.minimum);
  EXPECT_FALSE(res.hamiltonian_path);
  EXPECT_EQ(res.cover.vertex_total(), t.vertex_count());
  EXPECT_EQ(static_cast<std::int64_t>(res.cover.size()),
            path_cover_size(t));
  // want_hamiltonian_cycle still works: the attempt is the verdict.
  SolveOptions copts = opts;
  copts.want_hamiltonian_cycle = true;
  const auto rc =
      Solver(copts).solve(Instance::cotree(cograph::clique(6)));
  ASSERT_TRUE(rc.ok);
  EXPECT_TRUE(rc.hamiltonian_cycle);
  ASSERT_TRUE(rc.cycle.has_value());
  EXPECT_EQ(rc.cycle->size(), 6u);
}

TEST(Count, ParallelBackendKeepsItsFixedContract) {
  // Backend::Parallel means "EREW, paper budget" on both entry points —
  // conflicting options are overridden, exactly as on the solve path.
  const Cotree t = testing::random_cotree(100, 33);
  SolveOptions loose;
  loose.backend = Backend::Parallel;
  loose.policy = pram::Policy::CRCW_Arbitrary;
  loose.processors = 3;
  SolveOptions fixed;
  fixed.backend = Backend::Parallel;
  const auto cl = Solver(loose).count(SolveRequest{Instance::view(t), {}, {}});
  const auto cf = Solver(fixed).count(SolveRequest{Instance::view(t), {}, {}});
  ASSERT_TRUE(cl.ok && cf.ok);
  EXPECT_EQ(cl.stats.steps, cf.stats.steps);
  EXPECT_EQ(cl.stats.work, cf.stats.work);
  EXPECT_EQ(cl.path_cover_size, cf.path_cover_size);
}

TEST(Count, MatchesSolveAcrossBackendsAndReportsPramCost) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    const Cotree t = testing::random_cotree(
        1 + rng.below(70), 300 + static_cast<unsigned>(trial));
    for (const Backend b :
         {Backend::Sequential, Backend::Pram, Backend::Native}) {
      SolveOptions opts;
      opts.backend = b;
      const Solver solver(opts);
      const auto c = solver.count(SolveRequest{Instance::view(t), {}, {}});
      ASSERT_TRUE(c.ok) << c.error;
      EXPECT_EQ(c.path_cover_size, path_cover_size(t));
      EXPECT_EQ(c.hamiltonian_path, has_hamiltonian_path(t));
      EXPECT_EQ(c.hamiltonian_cycle, has_hamiltonian_cycle(t));
      EXPECT_EQ(c.stats_valid, b == Backend::Pram);
      if (c.stats_valid) {
        EXPECT_GT(c.stats.steps, 0u);
      }
    }
  }
}

TEST(Batch, MatchesSingleSolveOn120Instances) {
  // The acceptance bar: solve_batch on >= 100 generated instances must
  // match per-instance solve() exactly (modulo wall-clock fields).
  std::vector<SolveRequest> reqs;
  std::vector<Cotree> keep;  // own the cotrees the requests view
  keep.reserve(120);
  for (unsigned i = 0; i < 120; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 7) % 120, 100000 + i));
  }
  for (unsigned i = 0; i < 120; ++i) {
    SolveRequest req;
    req.instance = Instance::view(keep[i]);
    req.label = "inst-" + std::to_string(i);
    if (i % 3 == 1) {
      SolveOptions o;
      o.backend = Backend::Pram;
      o.collect_trace = true;
      o.validate = true;
      req.options = o;
    } else if (i % 3 == 2) {
      SolveOptions o;
      o.backend = Backend::Parallel;
      o.validate = true;
      req.options = o;
    }
    reqs.push_back(std::move(req));
  }

  SolveOptions defaults;  // Sequential
  defaults.validate = true;
  defaults.batch_workers = 3;
  Solver solver(defaults);
  const auto batch = solver.solve_batch(reqs);
  ASSERT_EQ(batch.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    // Per-instance reference: same options but workers forced to 1, which
    // is also what the batch path runs.
    auto single = solver.solve(reqs[i]);
    ASSERT_TRUE(batch[i].ok) << i << ": " << batch[i].error;
    ASSERT_TRUE(single.ok) << i << ": " << single.error;
    EXPECT_EQ(batch[i].label, reqs[i].label);
    EXPECT_EQ(batch[i].backend, single.backend);
    EXPECT_EQ(batch[i].cover.paths, single.cover.paths) << i;
    EXPECT_EQ(batch[i].optimal_size, single.optimal_size);
    EXPECT_EQ(batch[i].minimum, single.minimum);
    EXPECT_EQ(batch[i].hamiltonian_path, single.hamiltonian_path);
    EXPECT_EQ(batch[i].hamiltonian_cycle, single.hamiltonian_cycle);
    EXPECT_EQ(batch[i].stats_valid, single.stats_valid);
    if (batch[i].stats_valid) {
      EXPECT_EQ(batch[i].stats.steps, single.stats.steps) << i;
      EXPECT_EQ(batch[i].stats.work, single.stats.work) << i;
    }
    EXPECT_EQ(batch[i].trace_valid, single.trace_valid);
    if (batch[i].trace_valid) {
      EXPECT_EQ(batch[i].trace.path_count, single.trace.path_count);
      EXPECT_EQ(batch[i].trace.bracket_length, single.trace.bracket_length);
    }
    EXPECT_TRUE(batch[i].validation.ok) << batch[i].validation.error;
  }

  // The pool is reused across batch calls; a second batch still works and
  // agrees with the first.
  const auto again = solver.solve_batch(reqs);
  ASSERT_EQ(again.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(again[i].cover.paths, batch[i].cover.paths);
  }
}

TEST(Batch, BadInstancesFailStructurallyWithoutPoisoningTheBatch) {
  std::vector<SolveRequest> reqs(3);
  reqs[0].instance = Instance::text("(+ a b c)");
  reqs[1].instance = Instance::text("(* broken");
  reqs[2].instance = Instance::text("(* x y)");
  Solver solver;
  const auto res = solver.solve_batch(reqs);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_TRUE(res[0].ok);
  EXPECT_EQ(res[0].cover.size(), 3u);
  EXPECT_FALSE(res[1].ok);
  EXPECT_FALSE(res[1].error.empty());
  EXPECT_TRUE(res[2].ok);
  EXPECT_TRUE(res[2].hamiltonian_path);
}

}  // namespace
}  // namespace copath
