// The zero-allocation request front-end (PR 5): the iterative SoA parser
// against the retired recursive-descent oracle (old-vs-new differential +
// deep-spine inputs past the old recursion depth), the binary canonical
// signature (injectivity via an actual decoder, twin/distinct properties),
// the express lane (bitwise-equal to the generic dispatch path, claims no
// native-thread lease), and the whole-request allocation regression: warm
// Service requests perform zero arena-fresh allocations, proven by the
// instrumented arena counters the Service aggregates per worker. The CI
// ASan job runs this suite with leak detection on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "copath.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

// ------------------------------------------------------------- the parser

/// Full structural equality, node ids and vertex ids included — the
/// differential bar is "the new parser emits byte-identical SoA arrays".
void expect_same_tree(const Cotree& a, const Cotree& b,
                      const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.vertex_count(), b.vertex_count()) << what;
  EXPECT_EQ(a.root(), b.root()) << what;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto id = static_cast<cograph::NodeId>(v);
    EXPECT_EQ(static_cast<int>(a.kind(id)), static_cast<int>(b.kind(id)))
        << what << " node " << v;
    EXPECT_EQ(a.parent(id), b.parent(id)) << what << " node " << v;
    ASSERT_EQ(a.child_count(id), b.child_count(id)) << what << " node " << v;
    const auto ca = a.children(id);
    const auto cb = b.children(id);
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i], cb[i]) << what << " node " << v << " child " << i;
    }
    if (a.is_leaf(id)) {
      EXPECT_EQ(a.vertex_of(id), b.vertex_of(id)) << what << " node " << v;
    }
  }
  for (std::size_t x = 0; x < a.vertex_count(); ++x) {
    const auto vx = static_cast<VertexId>(x);
    EXPECT_EQ(a.leaf_of(vx), b.leaf_of(vx)) << what << " vertex " << x;
    // The new parser normalizes away names equal to their synthetic
    // fallback ("v<id>"); the oracle stores every token. Either the names
    // agree, or the new side elided exactly the regenerable one.
    const std::string& na = a.name_of(vx);
    const std::string& nb = b.name_of(vx);
    EXPECT_TRUE(na == nb ||
                (na.empty() && nb == "v" + std::to_string(x)))
        << what << " vertex " << x << ": `" << na << "` vs `" << nb << "`";
  }
  EXPECT_EQ(a.format(), b.format()) << what;
}

TEST(FrontendParser, HandcraftedNormalizationCasesMatchTheOracle) {
  // The normalization corners: same-kind merges (left- and right-nested),
  // single-child collapse, collapse-then-merge, whitespace soup,
  // multi-byte names, a bare leaf.
  const char* cases[] = {
      "a",
      "  spaced_leaf\t",
      "(+ a b)",
      "(* (+ a b) c)",
      "(+ (+ a b) (+ c d))",
      "(+ (* (+ a b)) c)",
      "(* (* (* a b) c) d)",
      "(+ a (+ b (+ c d)))",
      "(+ (* a) b)",
      "(* (+ (* a) ) b)",
      "\n(+\ta \n b)\r",
      "(* longname_with_underscores x0 x1 (+ y-1 y-2))",
      "(+ (* a b) (* c d) (+ e f) g)",
  };
  for (const char* text : cases) {
    const Cotree got = Cotree::parse(text);
    const Cotree want = Cotree::parse_reference(text);
    expect_same_tree(got, want, std::string("case `") + text + "`");
    got.validate();
  }
}

TEST(FrontendParser, MalformedInputsRejectIdenticallyToTheOracle) {
  const char* cases[] = {
      "",      "   ",      "(",        ")",       "(+)",      "(+ )",
      "(a b)", "(+ a",     "a b",      "(+ a b))", "(* (+ a b)",
      "((+ a b))", "(+ a ) b", "(- a b)",
  };
  for (const char* text : cases) {
    EXPECT_THROW((void)Cotree::parse(text), util::CheckError) << text;
    EXPECT_THROW((void)Cotree::parse_reference(text), util::CheckError)
        << text;
  }
}

TEST(FrontendParser, DifferentialOverTheRandomCotreeHarness) {
  // format() of a random cotree exercises arbitrary arity, skew, and
  // nesting; both parsers must reconstruct the identical SoA layout.
  for (unsigned trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + (trial * 17) % 220;
    const Cotree t = testing::random_cotree(n, 52000 + trial);
    const std::string text = t.format();
    const Cotree got = Cotree::parse(text);
    const Cotree want = Cotree::parse_reference(text);
    expect_same_tree(got, want, "trial " + std::to_string(trial));
    // And the round trip itself is the identity on the algebra text.
    EXPECT_EQ(got.format(), text) << "trial " << trial;
  }
}

TEST(FrontendParser, CommutativeShufflesStillCanonicalizeIdentically) {
  // parse() feeds the canonical cache key; shuffled presentations of one
  // graph must keep resolving to one signature.
  util::Rng rng(77123);
  for (unsigned trial = 0; trial < 20; ++trial) {
    const Cotree t = testing::random_cotree(2 + trial * 9, 8800 + trial);
    const auto base = canonical_form(Cotree::parse(t.format()));
    const Cotree twin = testing::shuffle_children(t, rng);
    const auto shuffled = canonical_form(Cotree::parse(twin.format()));
    EXPECT_EQ(base.signature, shuffled.signature) << trial;
    EXPECT_EQ(base.hash, shuffled.hash) << trial;
  }
}

/// Alternating right-spine comb of the given depth built iteratively
/// (from_parts never recurses): spine node i owns one leaf and the next
/// spine node; the bottom owns two leaves.
Cotree deep_spine(std::size_t depth) {
  const std::size_t n = 2 * depth + 1;
  std::vector<cograph::NodeKind> kind(n);
  std::vector<cograph::NodeId> parent(n);
  for (std::size_t i = 0; i < depth; ++i) {
    kind[i] = i % 2 == 0 ? cograph::NodeKind::Join : cograph::NodeKind::Union;
    parent[i] = i == 0 ? cograph::kNull : static_cast<cograph::NodeId>(i - 1);
  }
  for (std::size_t i = 0; i < depth; ++i) {
    kind[depth + i] = cograph::NodeKind::Leaf;
    parent[depth + i] = static_cast<cograph::NodeId>(i);
  }
  kind[2 * depth] = cograph::NodeKind::Leaf;
  parent[2 * depth] = static_cast<cograph::NodeId>(depth - 1);
  return Cotree::from_parts(std::move(kind), std::move(parent), 0);
}

TEST(FrontendParser, DeepSpinesPastTheOldRecursionDepthParse) {
  // 5000 nested levels: far past the recursive oracle's 512 cap (which
  // existed to protect its call stack). The iterative parser takes it in
  // stride; the oracle must refuse rather than overflow.
  const Cotree t = deep_spine(5000);
  const std::string text = t.format();
  const Cotree back = Cotree::parse(text);
  back.validate();
  EXPECT_EQ(back.format(), text);
  EXPECT_EQ(back.vertex_count(), t.vertex_count());
  EXPECT_EQ(canonical_form(back).signature, canonical_form(t).signature);
  EXPECT_THROW((void)Cotree::parse_reference(text), util::CheckError);
}

TEST(FrontendParser, TheCapIsAnInputSanityBoundNotAStackLimit) {
  // Nesting right at the (now much larger) cap parses; one past throws.
  // Builds ~6 * depth bytes of text — the point of the cap being an
  // input-size bound.
  const std::size_t depth = 3000;
  std::string ok;
  for (std::size_t d = 0; d < depth; ++d) {
    ok += d % 2 == 0 ? "(* x " : "(+ x ";
  }
  ok += 'y';
  ok.append(depth, ')');
  const Cotree t = Cotree::parse(ok);
  t.validate();
  EXPECT_EQ(t.vertex_count(), depth + 1);
}

// --------------------------------------------------- the binary signature

/// Stack-machine decoder for the post-order kind/arity stream — the
/// injectivity argument of DESIGN.md §8, executed: if the stream decodes
/// back to a tree with the same canonical signature, two distinct
/// canonical trees cannot share a stream.
Cotree decode_signature(const std::string& sig) {
  CotreeBuilder b;
  std::vector<cograph::NodeId> stack;
  std::size_t i = 0;
  while (i < sig.size()) {
    const char tag = sig[i++];
    if (tag == cograph::kSigLeaf) {
      stack.push_back(b.leaf());
      continue;
    }
    std::size_t arity = 0;
    int shift = 0;
    while (true) {
      const auto byte = static_cast<unsigned char>(sig[i++]);
      arity |= static_cast<std::size_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    COPATH_CHECK(arity >= 2 && arity <= stack.size());
    const std::span<const cograph::NodeId> kids(
        stack.data() + (stack.size() - arity), arity);
    const cograph::NodeId node =
        b.node(tag == cograph::kSigUnion ? cograph::NodeKind::Union
                                         : cograph::NodeKind::Join,
               kids);
    stack.resize(stack.size() - arity);
    stack.push_back(node);
  }
  COPATH_CHECK(stack.size() == 1);
  return std::move(b).build(stack.back());
}

TEST(BinarySignature, DecodesBackToTheSameCanonicalClass) {
  for (unsigned trial = 0; trial < 40; ++trial) {
    const Cotree t = testing::random_cotree(1 + trial * 7, 9100 + trial);
    const auto form = canonical_form(t);
    const Cotree decoded = decode_signature(form.signature);
    const auto again = canonical_form(decoded);
    EXPECT_EQ(again.signature, form.signature) << trial;
    EXPECT_EQ(again.key, form.key) << trial;
    EXPECT_EQ(again.hash, form.hash) << trial;
  }
}

TEST(BinarySignature, TwinsShareItDistinctClassesDoNot) {
  util::Rng rng(41990);
  std::vector<std::string> signatures;
  for (const auto& t : testing::large_families()) {
    const auto base = canonical_form(t);
    // Every member of the equivalence class: same bytes.
    const Cotree twin = testing::random_twin(t, rng);
    EXPECT_EQ(canonical_form(twin).signature, base.signature);
    signatures.push_back(base.signature);
  }
  // Distinct families: distinct bytes (they are non-isomorphic graphs).
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    for (std::size_t j = i + 1; j < signatures.size(); ++j) {
      EXPECT_NE(signatures[i], signatures[j]) << i << " vs " << j;
    }
  }
}

TEST(BinarySignature, ComplementFlipsTheSignature) {
  const Cotree t = testing::random_cotree(40, 321);
  EXPECT_NE(canonical_form(t).signature,
            canonical_form(t.complement()).signature);
}

// --------------------------------------------------------- the express lane

void expect_equal_results(const SolveResult& got, const SolveResult& want,
                          const std::string& what) {
  ASSERT_EQ(got.ok, want.ok) << what << ": " << got.error;
  EXPECT_EQ(got.backend, want.backend) << what;
  EXPECT_EQ(got.routed, want.routed) << what;
  EXPECT_EQ(got.vertex_count, want.vertex_count) << what;
  EXPECT_EQ(got.cover.paths, want.cover.paths) << what;
  EXPECT_EQ(got.optimal_size, want.optimal_size) << what;
  EXPECT_EQ(got.minimum, want.minimum) << what;
  EXPECT_EQ(got.hamiltonian_path, want.hamiltonian_path) << what;
  EXPECT_EQ(got.hamiltonian_cycle, want.hamiltonian_cycle) << what;
  EXPECT_EQ(got.cycle, want.cycle) << what;
  EXPECT_EQ(got.stats_valid, want.stats_valid) << what;
  EXPECT_EQ(got.trace_valid, want.trace_valid) << what;
}

TEST(ExpressLane, BitwiseEqualToTheGenericDispatchPath) {
  // The express solve IS the sequential sweep: identical covers, verdicts,
  // cycles, and routing metadata to Solver's registry path, across the
  // family sweeps and options combinations.
  const Solver solver;
  exec::Arena arena;
  for (const auto& t : testing::large_families()) {
    for (const Backend b : {Backend::Sequential, Backend::Adaptive}) {
      for (const bool cycle : {false, true}) {
        SolveOptions opts;
        opts.backend = b;
        opts.want_hamiltonian_cycle = cycle;
        opts.validate = true;
        ASSERT_TRUE(
            service::express_eligible(t.vertex_count(), opts));
        const Instance inst = Instance::view(t);
        const SolveResult express =
            service::solve_express(inst, "x", opts, arena);
        const SolveResult generic =
            solver.solve(SolveRequest{Instance::view(t), opts, "x"});
        expect_equal_results(express, generic, core::to_string(b));
        EXPECT_TRUE(express.validation.ok) << express.validation.error;
        EXPECT_EQ(express.label, "x");
      }
    }
  }
  // compute_verdicts off: the -1 sentinel and the cycle-attempt verdict.
  for (unsigned trial = 0; trial < 25; ++trial) {
    const Cotree t = testing::random_cotree(1 + trial * 13, 66100 + trial);
    SolveOptions opts;
    opts.backend = Backend::Adaptive;
    opts.compute_verdicts = false;
    opts.want_hamiltonian_cycle = trial % 2 == 0;
    const Instance inst = Instance::view(t);
    const SolveResult express =
        service::solve_express(inst, {}, opts, arena);
    const SolveResult generic =
        solver.solve(SolveRequest{Instance::view(t), opts, {}});
    expect_equal_results(express, generic, "verdictless " +
                                               std::to_string(trial));
    EXPECT_EQ(express.optimal_size, -1);
  }
}

TEST(ExpressLane, EligibilityFollowsTheCostModelFloor) {
  SolveOptions seq;
  seq.backend = Backend::Sequential;
  EXPECT_TRUE(service::express_eligible(1, seq));
  EXPECT_TRUE(service::express_eligible(std::size_t{1} << 22, seq));

  SolveOptions ada;
  ada.backend = Backend::Adaptive;
  const auto floor_n = core::CostModel::calibrated().min_native_n;
  EXPECT_TRUE(service::express_eligible(floor_n - 1, ada));
  EXPECT_FALSE(service::express_eligible(floor_n, ada));

  static core::CostModel forced;  // must outlive the options
  forced.min_native_n = 0;
  ada.cost_model = &forced;
  EXPECT_FALSE(service::express_eligible(4, ada));

  SolveOptions native;
  native.backend = Backend::Native;
  EXPECT_FALSE(service::express_eligible(4, native));
}

TEST(ExpressLane, StructuredFailuresOnBadInstances) {
  exec::Arena arena;
  SolveOptions opts;
  const SolveResult res =
      service::solve_express(Instance::text("(* oops"), "bad", opts, arena);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
  EXPECT_EQ(res.label, "bad");
}

TEST(ExpressLane, ServiceSmallRequestsClaimNoNativeThreadLease) {
  Service::Options sopts;
  sopts.workers = 2;
  Service svc(sopts);
  std::vector<std::future<SolveResult>> futs;
  for (unsigned i = 0; i < 24; ++i) {
    const std::string text =
        testing::random_cotree(1 + i * 9, 7000 + i).format();
    futs.push_back(svc.submit(SolveRequest{Instance::text(text), {},
                                           std::to_string(i)}));
  }
  for (auto& f : futs) ASSERT_TRUE(f.get().ok);
  const auto stats = svc.stats();
  // Every computed request (i.e. every cache miss) went express; nobody
  // claimed a thread lease.
  EXPECT_EQ(stats.lease_acquires, 0u);
  EXPECT_EQ(stats.express_solves, stats.cache_misses);
  EXPECT_GT(stats.express_solves, 0u);

  // Forcing the generic path (a model whose floor is 0 makes Adaptive
  // ineligible) claims leases again.
  static core::CostModel no_floor;
  no_floor.min_native_n = 0;
  SolveOptions generic = sopts.solve;
  generic.cost_model = &no_floor;
  const Cotree big = testing::random_cotree(60, 1);  // outlives the worker
  auto f =
      svc.submit(SolveRequest{Instance::view(big), generic, "generic"});
  ASSERT_TRUE(f.get().ok);
  EXPECT_GE(svc.stats().lease_acquires, 1u);
}

TEST(ExpressLane, ServiceDifferentialWithExpressDisabled) {
  // The lane is an optimization, not a semantic: the same traffic with
  // use_express off must produce bitwise-identical results.
  std::vector<std::string> texts;
  for (unsigned i = 0; i < 40; ++i) {
    texts.push_back(testing::random_cotree(1 + (i * 19) % 120, 300 + i)
                        .format());
  }
  std::vector<SolveResult> with, without;
  for (const bool express : {true, false}) {
    Service::Options sopts;
    sopts.workers = 2;
    sopts.use_express = express;
    Service svc(sopts);
    std::vector<std::future<SolveResult>> futs;
    futs.reserve(texts.size());
    for (const auto& text : texts) {
      futs.push_back(svc.submit(SolveRequest{Instance::text(text), {}, {}}));
    }
    auto& out = express ? with : without;
    for (auto& f : futs) out.push_back(f.get());
    const auto stats = svc.stats();
    EXPECT_EQ(stats.express_solves > 0, express);
  }
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    expect_equal_results(with[i], without[i], "req " + std::to_string(i));
  }
}

// ------------------------------------------- whole-request allocation budget

/// The zero-allocation steady state, end to end: after warm-up, repeated
/// Service requests — cache hits AND full express solves — perform zero
/// arena-fresh allocations (every parse stack, canonicalization buffer,
/// binarize worklist, leaf-count array, and sweep structure is a recycled
/// arena buffer). The Service aggregates its workers' arena counters per
/// request, so the property is observable from outside; a single worker
/// makes the accounting deterministic, and a warm sentinel request fences
/// the final aggregation before the counters are read.
void expect_zero_fresh_allocs_when_warm(bool use_cache) {
  Service::Options sopts;
  sopts.workers = 1;
  sopts.use_cache = use_cache;
  Service svc(sopts);
  std::vector<std::string> texts;
  for (unsigned i = 0; i < 8; ++i) {
    texts.push_back(
        testing::random_cotree(16 + i * 37, 90210 + i).format());
  }
  const auto round = [&] {
    std::vector<std::future<SolveResult>> futs;
    futs.reserve(texts.size());
    for (const auto& text : texts) {
      futs.push_back(svc.submit(SolveRequest{Instance::text(text), {}, {}}));
    }
    for (auto& f : futs) ASSERT_TRUE(f.get().ok);
  };
  // Two warm-up rounds: the first populates the arena's size classes (and
  // the cache, when enabled), the second fences its own aggregation.
  round();
  round();
  const auto warm = svc.stats();
  EXPECT_GT(warm.arena_acquires, 0u);  // scratch IS arena-routed

  for (int r = 0; r < 5; ++r) round();
  const auto after = svc.stats();
  EXPECT_EQ(after.arena_fresh_allocs, warm.arena_fresh_allocs)
      << "steady-state requests must reuse arena buffers, never allocate "
         "fresh ones (use_cache = "
      << use_cache << ")";
  EXPECT_GT(after.arena_acquires, warm.arena_acquires);
  if (use_cache) {
    EXPECT_GT(after.cache_hits, 0u);
  } else {
    EXPECT_EQ(after.express_solves, after.cache_misses + 8 * 7)
        << "cache off: every request is a full express solve";
  }
}

TEST(FrontendAllocations, WarmCacheHitsAreArenaFreshFree) {
  expect_zero_fresh_allocs_when_warm(/*use_cache=*/true);
}

TEST(FrontendAllocations, WarmExpressSolvesAreArenaFreshFree) {
  expect_zero_fresh_allocs_when_warm(/*use_cache=*/false);
}

TEST(FrontendAllocations, ParseAloneIsArenaFreshFreeWhenWarm) {
  // Unit-level version of the same property: repeated parses of the same
  // shape stop touching the heap for scratch after the first.
  exec::Arena& arena = exec::Arena::for_this_thread();
  const std::string text = testing::random_cotree(900, 5).format();
  (void)Cotree::parse(text);
  (void)canonical_form(Cotree::parse(text));
  const auto warm = arena.stats().fresh_allocs;
  for (int r = 0; r < 4; ++r) {
    const Cotree t = Cotree::parse(text);
    (void)canonical_form(t);
  }
  EXPECT_EQ(arena.stats().fresh_allocs, warm);
}

}  // namespace
}  // namespace copath
