// Graph materialization and the LCA adjacency oracle (property (6)).
#include <gtest/gtest.h>

#include "cograph/families.hpp"
#include "cograph/graph.hpp"
#include "util/rng.hpp"

namespace copath::cograph {
namespace {

TEST(FromCotree, CliqueHasAllEdges) {
  const Graph g = Graph::from_cotree(clique(6));
  EXPECT_EQ(g.vertex_count(), 6u);
  EXPECT_EQ(g.edge_count(), 15u);
  for (VertexId u = 0; u < 6; ++u)
    for (VertexId v = u + 1; v < 6; ++v) EXPECT_TRUE(g.has_edge(u, v));
}

TEST(FromCotree, IndependentSetHasNoEdges) {
  const Graph g = Graph::from_cotree(independent_set(9));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(FromCotree, CompleteBipartiteEdgeCount) {
  const Graph g = Graph::from_cotree(complete_bipartite(3, 5));
  EXPECT_EQ(g.edge_count(), 15u);
}

TEST(FromCotree, CompleteMultipartiteEdgeCount) {
  // K(2,3,4): edges = (2*3 + 2*4 + 3*4) = 26.
  const Graph g = Graph::from_cotree(complete_multipartite({2, 3, 4}));
  EXPECT_EQ(g.edge_count(), 26u);
}

TEST(FromCotree, Fig10Example) {
  const Graph g = Graph::from_cotree(paper_fig10());
  EXPECT_EQ(g.vertex_count(), 6u);
  // (* (+ (* a b) c) (+ d e f)): edges = ab + {a,b,c}x{d,e,f} = 1 + 9.
  EXPECT_EQ(g.edge_count(), 10u);
}

TEST(Oracle, MatchesExplicitGraphOnRandomCotrees) {
  util::Rng rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 4000 + static_cast<unsigned>(trial);
    const Cotree t = random_cotree(2 + rng.below(40), opt);
    const Graph g = Graph::from_cotree(t);
    const CotreeAdjacency adj(t);
    const auto n = static_cast<VertexId>(g.vertex_count());
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        ASSERT_EQ(adj.adjacent(u, v), g.has_edge(u, v))
            << "trial " << trial << " pair (" << u << "," << v << ")";
      }
    }
  }
}

TEST(Oracle, LcaIdentifiesCorrectNodeKind) {
  const Cotree t = Cotree::parse("(* (+ a b) (+ c d))");
  const CotreeAdjacency adj(t);
  EXPECT_FALSE(adj.adjacent(0, 1));  // a,b under the union
  EXPECT_TRUE(adj.adjacent(0, 2));   // a,c across the join
  EXPECT_FALSE(adj.adjacent(2, 3));  // c,d under the union
}

TEST(Complement, EdgeCountsAreComplementary) {
  util::Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 6000 + static_cast<unsigned>(trial);
    const Cotree t = random_cotree(2 + rng.below(25), opt);
    const Graph g = Graph::from_cotree(t);
    const Graph gc = Graph::from_cotree(t.complement());
    const std::size_t n = g.vertex_count();
    EXPECT_EQ(g.edge_count() + gc.edge_count(), n * (n - 1) / 2);
    // Also via Graph::complement directly.
    const Graph gc2 = g.complement();
    EXPECT_EQ(gc2.edge_count(), gc.edge_count());
  }
}

TEST(GraphBasics, AddEdgeAndLookup) {
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_THROW((void)g.has_edge(0, 2), util::CheckError);  // not finalized
  g.finalize();
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_THROW(g.add_edge(1, 1), util::CheckError);  // self loop
}

}  // namespace
}  // namespace copath::cograph
