#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_budget.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace copath::util {
namespace {

TEST(Check, ThrowsWithLocation) {
  try {
    COPATH_CHECK_MSG(1 == 2, "custom message " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(COPATH_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    // Different seeds should diverge almost surely.
    if (x != c()) return;
  }
  FAIL() << "seeds 123 and 124 produced identical streams";
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng r(7);
  std::vector<int> hist(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    ++hist[static_cast<std::size_t>(v)];
  }
  for (const int h : hist) {
    EXPECT_GT(h, kDraws / 10 - kDraws / 50);
    EXPECT_LT(h, kDraws / 10 + kDraws / 50);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sink, 0.0);
  EXPECT_GE(t.seconds(), 0.0);
  const double first = t.millis();
  EXPECT_LE(first, t.millis());  // monotone across repeated calls
}

TEST(ThreadPool, InlineModeRunsEverything) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, MultiWorkerCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, BlocksArePartition) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  pool.parallel_blocks(0, 17,
                       [&](std::size_t, std::size_t lo, std::size_t hi) {
                         std::lock_guard lock(mu);
                         blocks.emplace_back(lo, hi);
                       });
  std::size_t covered = 0;
  for (const auto& [lo, hi] : blocks) covered += hi - lo;
  EXPECT_EQ(covered, 17u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 10, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadBudgeter, DistributesRemainderToEarliestStarters) {
  // pool = 8, 3 concurrent requests: the old floor(8/3) = 2/2/2 stranded
  // two threads; ceil distribution hands out 3/3/2.
  ThreadBudgeter b(8);
  const auto l0 = b.acquire(3);
  const auto l1 = b.acquire(2);
  const auto l2 = b.acquire(1);
  EXPECT_EQ(l0.threads, 3u);
  EXPECT_EQ(l1.threads, 3u);
  EXPECT_EQ(l2.threads, 2u);
  b.release(l0);
  b.release(l1);
  b.release(l2);
}

TEST(ThreadBudgeter, SaturatedPoolGrantsAtLeastOne) {
  ThreadBudgeter b(4);
  std::vector<ThreadBudgeter::Lease> leases;
  for (int i = 0; i < 6; ++i) leases.push_back(b.acquire(4));
  // First four drain the pool one each; the extra two get the floor of 1.
  for (const auto& l : leases) EXPECT_EQ(l.threads, 1u);
  for (auto& l : leases) b.release(l);
  // Fully released: a lone request reclaims the whole pool.
  const auto big = b.acquire(1);
  EXPECT_EQ(big.threads, 4u);
  b.release(big);
}

TEST(ThreadBudgeter, RebalancesAsRequestsComplete) {
  ThreadBudgeter b(8);
  auto early = b.acquire(8);  // heavy batch: budget 1
  EXPECT_EQ(early.threads, 1u);
  auto mid = b.acquire(8);
  EXPECT_EQ(mid.threads, 1u);
  b.release(early);
  b.release(mid);
  // Straggler tail: two requests left split the whole pool.
  const auto tail0 = b.acquire(2);
  const auto tail1 = b.acquire(1);
  EXPECT_EQ(tail0.threads, 4u);
  EXPECT_EQ(tail1.threads, 4u);
  b.release(tail0);
  b.release(tail1);
}

TEST(ThreadBudgeter, ConcurrentClaimsNeverOversubscribeBeyondFloor) {
  // Hammer from a pool: the sum of simultaneous grants must never exceed
  // pool + (#requests with the floor-of-1 grant), i.e. claims conserve.
  ThreadBudgeter b(6);
  ThreadPool pool(4);
  std::atomic<long> in_use{0};
  std::atomic<long> peak{0};
  pool.parallel_for(0, 64, [&](std::size_t) {
    const auto lease = b.acquire(4);
    const long now =
        in_use.fetch_add(static_cast<long>(lease.threads)) +
        static_cast<long>(lease.threads);
    long p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    b.release(lease);
    in_use.fetch_sub(static_cast<long>(lease.threads));
  });
  EXPECT_EQ(in_use.load(), 0);
  // 4 concurrent claimants, each guaranteed >= 1: peak <= pool + 4.
  EXPECT_LE(peak.load(), 6 + 4);
}

TEST(Table, AlignsAndRendersAllCellTypes) {
  Table t({"name", "n", "ratio"});
  t.row({Table::S("alpha"), Table::I(12345), Table::F(1.5)});
  t.row({Table::S("b"), Table::I(7), Table::F(0.25)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_NE(s.find("1.500"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

}  // namespace
}  // namespace copath::util
