// Daemon concurrency stress: many pipelining clients against a deliberately
// small server (tiny service queue, tiny per-connection window) so the
// backpressure machinery — parked requests, paused reads, completion-order
// responses — actually engages, plus graceful drain racing live traffic.
//
// The suite name matches the TSan CI job's -R filter: the interesting bugs
// here are cross-thread (solver workers encode responses and touch the
// completion queue while the loop thread owns the sockets), so this file's
// main value is under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "copath.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "testing.hpp"

namespace copath {
namespace {

namespace proto = net::protocol;
using proto::Status;

struct Workload {
  std::vector<std::string> texts;
  std::vector<std::string> signatures;
};

Workload make_workload(std::size_t count) {
  Workload w;
  for (std::size_t i = 0; i < count; ++i) {
    const Cotree t = testing::random_cotree(3 + i * 5 % 40, 71000 + i);
    w.texts.push_back(t.format());
    w.signatures.push_back(
        canonical_form(t, /*with_algebra_key=*/false).signature);
  }
  return w;
}

std::uint64_t stat(const proto::Response& res, std::string_view key) {
  for (const auto& [k, v] : res.stats) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "missing stats key: " << key;
  return 0;
}

TEST(DaemonStress, PipelinedClientsSaturateATinyServerWithoutLoss) {
  // Small everything: 2 solver workers, an 8-deep service queue, and a
  // 4-request connection window, so clients that pipeline 40 requests at
  // once force parking and read-pausing constantly. Every request must
  // still come back exactly once, Ok, with its own sequence id.
  net::Server::Options sopts;
  sopts.service.workers = 2;
  sopts.service.queue_capacity = 8;
  sopts.inflight_window = 4;
  net::Server server(std::move(sopts));
  const std::uint16_t port = server.port();
  std::thread loop([&server] { server.run(); });

  const Workload w = make_workload(8);
  constexpr int kThreads = 6;
  constexpr int kRequests = 40;
  std::atomic<int> ok{0};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([&, tid] {
      net::Client cli("127.0.0.1", port);
      std::set<std::uint64_t> pending;
      for (int i = 0; i < kRequests; ++i) {
        const std::size_t pick = (tid * 13 + i * 7) % w.texts.size();
        pending.insert(i % 2 == 0
                           ? cli.send_solve_text(w.texts[pick])
                           : cli.send_solve_signature(w.signatures[pick]));
      }
      cli.flush();
      for (int i = 0; i < kRequests; ++i) {
        const proto::Response res = cli.recv();
        // Each seq answered exactly once, whatever the completion order.
        if (pending.erase(res.seq) == 1 && res.status == Status::Ok &&
            res.result.ok) {
          ok.fetch_add(1);
        } else {
          bad.fetch_add(1);
        }
      }
      EXPECT_TRUE(pending.empty());
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kThreads * kRequests);
  EXPECT_EQ(bad.load(), 0);

  {
    net::Client cli("127.0.0.1", port);
    const proto::Response res = cli.stats();
    ASSERT_EQ(res.status, Status::Ok);
    EXPECT_EQ(stat(res, "completed"),
              static_cast<std::uint64_t>(kThreads * kRequests));
    EXPECT_EQ(stat(res, "bad_frames"), 0u);
    // 8 distinct instances under 480 requests: the canonical cache (and,
    // under this much concurrency, likely coalescing too) must have fired.
    EXPECT_GT(stat(res, "cache_hits"), 0u);
    EXPECT_EQ(cli.drain().status, Status::Ok);
  }
  loop.join();
}

TEST(DaemonStress, DrainRacesLiveTrafficAndAlwaysTerminates) {
  net::Server::Options sopts;
  sopts.service.workers = 2;
  sopts.service.queue_capacity = 16;
  net::Server server(std::move(sopts));
  const std::uint16_t port = server.port();
  std::thread loop([&server] { server.run(); });

  const Workload w = make_workload(4);
  constexpr int kThreads = 4;
  std::atomic<int> ok{0};
  std::atomic<int> refused{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([&, tid] {
      // Hammer until the drain cuts the connection. Every response seen
      // must be Ok or a structured Draining refusal — anything else (or a
      // crash, or a hang) is the bug this test exists to catch.
      try {
        net::Client cli("127.0.0.1", port);
        for (int i = 0; i < 100000; ++i) {
          const proto::Response res =
              cli.solve_text(w.texts[(tid + i) % w.texts.size()]);
          if (res.status == Status::Ok) {
            ok.fetch_add(1);
          } else if (res.status == Status::Draining) {
            refused.fetch_add(1);
          } else {
            unexpected.fetch_add(1);
          }
        }
      } catch (const util::CheckError&) {
        // Connection torn down by the drain — the expected exit.
      }
    });
  }

  // Let real traffic build, then pull the plug mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.request_drain();
  loop.join();  // must terminate: drain always completes
  for (auto& t : clients) t.join();

  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(unexpected.load(), 0);
}

}  // namespace
}  // namespace copath
