// Hamiltonian path / cycle corollary, cross-checked against brute force.
#include <gtest/gtest.h>

#include "baseline/brute_force.hpp"
#include "cograph/families.hpp"
#include "core/count.hpp"
#include "core/hamiltonian.hpp"
#include "util/rng.hpp"

namespace copath::core {
namespace {

using cograph::Cotree;
using cograph::Graph;
using cograph::RandomCotreeOptions;

TEST(HamPath, KnownFamilies) {
  EXPECT_TRUE(hamiltonian_path(cograph::clique(6)).has_value());
  EXPECT_FALSE(hamiltonian_path(cograph::independent_set(3)).has_value());
  EXPECT_TRUE(hamiltonian_path(cograph::complete_bipartite(4, 4)));
  EXPECT_TRUE(hamiltonian_path(cograph::complete_bipartite(5, 4)));
  EXPECT_FALSE(hamiltonian_path(cograph::complete_bipartite(6, 4)));
}

TEST(HamPath, ReturnedPathIsActuallyHamiltonian) {
  util::Rng rng(13);
  int found = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 330 + static_cast<unsigned>(trial);
    opt.join_root_probability = 0.8;  // favour connected graphs
    const Cotree t = cograph::random_cotree(2 + rng.below(30), opt);
    const auto path = hamiltonian_path(t);
    ASSERT_EQ(path.has_value(), path_cover_size(t) == 1);
    if (!path) continue;
    ++found;
    PathCover as_cover;
    as_cover.paths.push_back(*path);
    EXPECT_TRUE(validate_path_cover(t, as_cover, false).ok);
    EXPECT_EQ(path->size(), t.vertex_count());
  }
  EXPECT_GT(found, 10);
}

TEST(HamCycle, KnownFamilies) {
  EXPECT_TRUE(has_hamiltonian_cycle(cograph::clique(3)));
  EXPECT_TRUE(has_hamiltonian_cycle(cograph::clique(9)));
  EXPECT_FALSE(has_hamiltonian_cycle(cograph::clique(2)));
  EXPECT_FALSE(has_hamiltonian_cycle(cograph::independent_set(5)));
  EXPECT_TRUE(has_hamiltonian_cycle(cograph::complete_bipartite(4, 4)));
  EXPECT_FALSE(has_hamiltonian_cycle(cograph::complete_bipartite(5, 4)));
  EXPECT_FALSE(has_hamiltonian_cycle(cograph::star(4)));
}

TEST(HamCycle, AgreesWithBruteForce) {
  util::Rng rng(14);
  int cycles = 0;
  for (int trial = 0; trial < 150; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 660 + static_cast<unsigned>(trial);
    opt.join_root_probability = 0.7;
    const Cotree t = cograph::random_cotree(1 + rng.below(9), opt);
    const Graph g = Graph::from_cotree(t);
    const bool want = baseline::has_hamiltonian_cycle_exact(g);
    ASSERT_EQ(has_hamiltonian_cycle(t), want)
        << "trial " << trial << " " << t.format();
    cycles += want ? 1 : 0;
  }
  EXPECT_GT(cycles, 15);
}

TEST(HamCycle, ConstructedCycleIsValid) {
  util::Rng rng(15);
  int built = 0;
  for (int trial = 0; trial < 100; ++trial) {
    RandomCotreeOptions opt;
    opt.seed = 990 + static_cast<unsigned>(trial);
    opt.join_root_probability = 0.8;
    const Cotree t = cograph::random_cotree(3 + rng.below(40), opt);
    const auto cyc = hamiltonian_cycle(t);
    ASSERT_EQ(cyc.has_value(), has_hamiltonian_cycle(t));
    if (!cyc) continue;
    ++built;
    ASSERT_EQ(cyc->size(), t.vertex_count());
    const cograph::CotreeAdjacency adj(t);
    std::vector<std::uint8_t> seen(t.vertex_count(), 0);
    for (std::size_t i = 0; i < cyc->size(); ++i) {
      ASSERT_FALSE(seen[static_cast<std::size_t>((*cyc)[i])]);
      seen[static_cast<std::size_t>((*cyc)[i])] = 1;
      const VertexId a = (*cyc)[i];
      const VertexId b = (*cyc)[(i + 1) % cyc->size()];
      ASSERT_TRUE(adj.adjacent(a, b))
          << "cycle edge (" << a << "," << b << ") missing, trial "
          << trial;
    }
  }
  EXPECT_GT(built, 20);
}

TEST(HamCycle, TriangleEdgeCase) {
  const auto cyc = hamiltonian_cycle(cograph::clique(3));
  ASSERT_TRUE(cyc.has_value());
  EXPECT_EQ(cyc->size(), 3u);
}

}  // namespace
}  // namespace copath::core
