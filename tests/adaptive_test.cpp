// Backend::Adaptive — the cost-model dispatch engine. The contract under
// test: (1) the model routes deterministically from (n, shape, threads)
// and below its floor always picks Sequential; (2) on the sequential
// routing domain Adaptive results are bitwise-equal to Backend::Sequential
// — covers, minima, verdicts — across family sweeps, 120 random
// instances, solve_batch, and Service concurrency; (3) when a forced model
// routes native, results are bitwise-equal to Backend::Native; (4) the
// `routed` field reports the engine that actually ran.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <vector>

#include "copath.hpp"
#include "testing.hpp"

namespace copath {
namespace {

using core::CostModel;

/// A model that routes everything it legally can to the native pipeline.
CostModel force_native_model() {
  CostModel m;
  m.min_native_n = 0;
  m.seq_ns_per_vertex = 1e12;  // sequential predicted infinitely slow
  m.native_fixed_ns = 0;
  return m;
}

TEST(Adaptive, RegisteredWithRoundTrippingNameAndExact) {
  const auto entry = BackendRegistry::instance().find(Backend::Adaptive);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, "adaptive");
  EXPECT_TRUE(entry->exact);
  EXPECT_EQ(core::backend_from_string("adaptive"), Backend::Adaptive);
}

TEST(Adaptive, CostModelRoutesSequentialBelowTheFloorAndOnOneThread) {
  const CostModel& m = CostModel::calibrated();
  // The floor is unconditional: even "infinite" threads stay sequential.
  EXPECT_EQ(m.choose(m.min_native_n - 1, m.min_native_n / 2, 1024),
            Backend::Sequential);
  // One thread: the native pipeline's constant factor can never win.
  EXPECT_EQ(m.choose(std::size_t{1} << 20, 1 << 19, 1),
            Backend::Sequential);
  // The calibrated single-thread slopes keep sequential ahead everywhere.
  EXPECT_LT(m.predict_sequential_ms(1 << 16),
            m.predict_native_ms(1 << 16, 1 << 15, 1));
}

TEST(Adaptive, CostModelRoutesNativeWhenThreadsOverwhelmTheSlopeGap) {
  const CostModel& m = CostModel::calibrated();
  // With enough workers the predicted native time crosses below the
  // sequential line at large n; find the worker count where it happens
  // and check monotonicity (more threads never flips native -> seq).
  const std::size_t n = std::size_t{1} << 20;
  bool native_seen = false;
  for (std::size_t w = 1; w <= 512; w *= 2) {
    const bool native = m.choose(n, n / 2, w) == Backend::Native;
    if (native_seen) EXPECT_TRUE(native) << "w=" << w;
    native_seen = native_seen || native;
  }
  EXPECT_TRUE(native_seen)
      << "calibrated model never routes native at n=2^20 even with 512 "
         "threads — the slope constants are implausible";
}

TEST(Adaptive, BitwiseEqualToSequentialOnFamilySweeps) {
  SolveOptions aopt;
  aopt.backend = Backend::Adaptive;
  aopt.validate = true;
  SolveOptions sopt = aopt;
  sopt.backend = Backend::Sequential;
  for (const auto& t : testing::large_families()) {
    const auto ares = Solver(aopt).solve(Instance::view(t));
    const auto sres = Solver(sopt).solve(Instance::view(t));
    ASSERT_TRUE(ares.ok) << ares.error;
    ASSERT_TRUE(sres.ok) << sres.error;
    EXPECT_EQ(ares.cover.paths, sres.cover.paths) << t.vertex_count();
    EXPECT_EQ(ares.optimal_size, sres.optimal_size);
    EXPECT_EQ(ares.minimum, sres.minimum);
    EXPECT_EQ(ares.hamiltonian_path, sres.hamiltonian_path);
    EXPECT_EQ(ares.hamiltonian_cycle, sres.hamiltonian_cycle);
    EXPECT_TRUE(ares.validation.ok) << ares.validation.error;
    EXPECT_EQ(ares.backend, Backend::Adaptive);
    EXPECT_EQ(ares.routed, Backend::Sequential);  // below the floor
  }
  for (const auto& t : testing::small_families()) {
    const auto ares = Solver(aopt).solve(Instance::view(t));
    const auto sres = Solver(sopt).solve(Instance::view(t));
    ASSERT_TRUE(ares.ok && sres.ok);
    EXPECT_EQ(ares.cover.paths, sres.cover.paths);
  }
}

TEST(Adaptive, BitwiseEqualToSequentialOn120RandomInstancesViaBatch) {
  // The acceptance differential: 120 random instances through
  // solve_batch under Backend::Adaptive, instance-by-instance
  // bitwise-equal to per-request Sequential solves.
  std::vector<cograph::Cotree> keep;
  keep.reserve(120);
  for (unsigned i = 0; i < 120; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 13) % 150, 515000 + i));
  }
  std::vector<SolveRequest> reqs(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    reqs[i].instance = Instance::view(keep[i]);
  }

  SolveOptions aopt;
  aopt.backend = Backend::Adaptive;
  aopt.workers = 0;  // budgeted by the batch
  aopt.batch_workers = 3;
  Solver asolver(aopt);
  const auto ares = asolver.solve_batch(reqs);

  SolveOptions sopt;
  sopt.backend = Backend::Sequential;
  const Solver ssolver(sopt);
  ASSERT_EQ(ares.size(), keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const auto sres = ssolver.solve(Instance::view(keep[i]));
    ASSERT_TRUE(ares[i].ok) << i << ": " << ares[i].error;
    ASSERT_TRUE(sres.ok) << i << ": " << sres.error;
    EXPECT_EQ(ares[i].cover.paths, sres.cover.paths) << i;
    EXPECT_EQ(ares[i].optimal_size, sres.optimal_size) << i;
    EXPECT_EQ(ares[i].minimum, sres.minimum) << i;
    EXPECT_EQ(ares[i].hamiltonian_path, sres.hamiltonian_path) << i;
    EXPECT_EQ(ares[i].hamiltonian_cycle, sres.hamiltonian_cycle) << i;
  }
}

TEST(Adaptive, BitwiseEqualToSequentialUnderServiceConcurrency) {
  // The serving default IS Adaptive; hammer a cache-less Service from the
  // test thread and compare every future against direct Sequential.
  Service::Options sopts;
  sopts.workers = 4;
  sopts.use_cache = false;
  Service svc(sopts);
  ASSERT_EQ(sopts.solve.backend, Backend::Adaptive);  // the default

  std::vector<cograph::Cotree> keep;
  std::vector<std::future<SolveResult>> futures;
  for (unsigned i = 0; i < 120; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 7) % 120, 303000 + i));
  }
  futures.reserve(keep.size());
  for (auto& t : keep) {
    futures.push_back(svc.submit(SolveRequest{Instance::view(t), {}, {}}));
  }
  SolveOptions seq;
  seq.backend = Backend::Sequential;
  const Solver ssolver(seq);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const auto got = futures[i].get();
    const auto want = ssolver.solve(Instance::view(keep[i]));
    ASSERT_TRUE(got.ok) << i << ": " << got.error;
    EXPECT_EQ(got.cover.paths, want.cover.paths) << i;
    EXPECT_EQ(got.optimal_size, want.optimal_size) << i;
    EXPECT_EQ(got.hamiltonian_path, want.hamiltonian_path) << i;
    EXPECT_EQ(got.hamiltonian_cycle, want.hamiltonian_cycle) << i;
  }
}

TEST(Adaptive, ForcedNativeRouteIsBitwiseEqualToBackendNative) {
  // Inject a model that predicts sequential as infinitely slow: every
  // instance takes the native route (arena + shortcuts) and must equal
  // Backend::Native bitwise.
  const CostModel forced = force_native_model();
  SolveOptions aopt;
  aopt.backend = Backend::Adaptive;
  aopt.cost_model = &forced;
  aopt.validate = true;
  SolveOptions nopt;
  nopt.backend = Backend::Native;
  nopt.validate = true;
  for (const auto& t : testing::large_families()) {
    const auto ares = Solver(aopt).solve(Instance::view(t));
    const auto nres = Solver(nopt).solve(Instance::view(t));
    ASSERT_TRUE(ares.ok) << ares.error;
    ASSERT_TRUE(nres.ok) << nres.error;
    EXPECT_EQ(ares.routed, Backend::Native);
    EXPECT_EQ(ares.cover.paths, nres.cover.paths) << t.vertex_count();
    EXPECT_EQ(ares.optimal_size, nres.optimal_size);
    EXPECT_TRUE(ares.validation.ok) << ares.validation.error;
    // Adaptive's native route is not a PRAM run either.
    EXPECT_FALSE(ares.stats_valid);
  }
  // And across a random sweep, batched (exercises the per-thread arena
  // recycling across batched solves).
  std::vector<cograph::Cotree> keep;
  for (unsigned i = 0; i < 40; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 17) % 200, 909000 + i));
  }
  std::vector<SolveRequest> reqs(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    reqs[i].instance = Instance::view(keep[i]);
    reqs[i].options = aopt;
  }
  Solver batcher;
  const auto batched = batcher.solve_batch(reqs);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const auto nres = Solver(nopt).solve(Instance::view(keep[i]));
    ASSERT_TRUE(batched[i].ok) << batched[i].error;
    EXPECT_EQ(batched[i].routed, Backend::Native) << i;
    EXPECT_EQ(batched[i].cover.paths, nres.cover.paths) << i;
  }
}

TEST(Adaptive, CountRoutesHostSweepAndMatchesVerdicts) {
  SolveOptions aopt;
  aopt.backend = Backend::Adaptive;
  const Solver solver(aopt);
  for (const auto& t : testing::large_families()) {
    const auto c = solver.count(SolveRequest{Instance::view(t), {}, {}});
    ASSERT_TRUE(c.ok) << c.error;
    EXPECT_EQ(c.path_cover_size, path_cover_size(t));
    EXPECT_EQ(c.hamiltonian_path, has_hamiltonian_path(t));
    EXPECT_EQ(c.hamiltonian_cycle, has_hamiltonian_cycle(t));
    EXPECT_FALSE(c.stats_valid);
  }
}

}  // namespace
}  // namespace copath
