// The fused batch path end to end: Service::submit_batch bitwise-equal to
// N independent submits (cold AND warm, families + 120 random instances
// including permuted twins), dedup soundness against the independent
// validator, empty/singleton/all-duplicate shapes, per-slot failure
// isolation, the Solver::solve_batch small-instance reroute differential,
// a TSan stress mixing concurrent batches with singles and drain, the
// BatchSolve wire round trip, and the daemon serving a whole batch in one
// frame.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "copath.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace copath {
namespace {

namespace proto = net::protocol;

void expect_equal_core(const SolveResult& got, const SolveResult& want,
                       const std::string& what) {
  ASSERT_EQ(got.ok, want.ok) << what << ": " << got.error;
  EXPECT_EQ(got.backend, want.backend) << what;
  EXPECT_EQ(got.vertex_count, want.vertex_count) << what;
  EXPECT_EQ(got.cover.paths, want.cover.paths) << what;
  EXPECT_EQ(got.optimal_size, want.optimal_size) << what;
  EXPECT_EQ(got.minimum, want.minimum) << what;
  EXPECT_EQ(got.hamiltonian_path, want.hamiltonian_path) << what;
  EXPECT_EQ(got.hamiltonian_cycle, want.hamiltonian_cycle) << what;
  EXPECT_EQ(got.cycle, want.cycle) << what;
}

/// The differential corpus: families + random instances + exact duplicates
/// + permuted/relabeled twins (the canonical-dedup stressors).
std::vector<Cotree> differential_corpus() {
  std::vector<Cotree> keep = testing::small_families();
  util::Rng rng(520001);
  const std::size_t families = keep.size();
  for (unsigned i = 0; keep.size() < families + 120; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 13) % 80, 520100 + i));
    if (i % 4 == 0) {
      // A fully adversarial member of the same canonical class.
      keep.push_back(testing::random_twin(keep.back(), rng));
    }
    if (i % 5 == 0) {
      // An exact structural duplicate (same resolved tree).
      keep.push_back(keep[keep.size() - 1 - i % 3]);
    }
  }
  return keep;
}

TEST(ServiceBatch, DifferentialAgainstIndependentSubmitsColdAndWarm) {
  const std::vector<Cotree> keep = differential_corpus();

  // workers = 1 on BOTH services: independent submits then process in FIFO
  // order, so the first member of every canonical group computes directly
  // — the same representative the batch core elects — and bitwise equality
  // holds member by member, not just group by group.
  Service::Options sopts;
  sopts.workers = 1;
  sopts.solve.validate = true;
  Service batch_svc(sopts);
  Service indep_svc(sopts);

  for (unsigned round = 0; round < 2; ++round) {  // round 1 is all-warm
    std::vector<SolveRequest> reqs;
    reqs.reserve(keep.size());
    for (unsigned i = 0; i < keep.size(); ++i) {
      SolveRequest req;
      req.instance = Instance::view(keep[i]);
      req.label = "b" + std::to_string(round) + "-" + std::to_string(i);
      if (i % 6 == 0) {
        SolveOptions o = sopts.solve;
        o.want_hamiltonian_cycle = true;
        req.options = o;
      }
      reqs.push_back(std::move(req));
    }

    std::vector<std::future<SolveResult>> singles;
    singles.reserve(reqs.size());
    for (const SolveRequest& req : reqs) {
      singles.push_back(indep_svc.submit(req));
    }
    auto batched = batch_svc.submit_batch(std::move(reqs)).get();
    ASSERT_EQ(batched.size(), keep.size());
    for (unsigned i = 0; i < keep.size(); ++i) {
      expect_equal_core(batched[i], singles[i].get(),
                        "round " + std::to_string(round) + " instance " +
                            std::to_string(i));
    }
  }

  const Service::Stats s = batch_svc.stats();
  EXPECT_EQ(s.batch_submits, 2u);
  EXPECT_GT(s.batch_dedup_hits, 0u);  // duplicates + twins were grouped
  EXPECT_GT(s.packed_solves, 0u);     // small instances took the slab sweep
  EXPECT_EQ(s.completed, 2 * keep.size());
}

TEST(ServiceBatch, CachelessDifferentialStaysBitwiseEqual) {
  // use_cache = false flips the core to IdenticalTree dedup; permuted
  // twins must then be solved separately, exactly like independent
  // cacheless submits solve them.
  const std::vector<Cotree> keep = differential_corpus();
  Service::Options sopts;
  sopts.workers = 1;
  sopts.use_cache = false;
  Service batch_svc(sopts);
  Service indep_svc(sopts);

  std::vector<SolveRequest> reqs;
  for (unsigned i = 0; i < keep.size(); ++i) {
    reqs.push_back(SolveRequest{Instance::view(keep[i]), {}, {}});
  }
  std::vector<std::future<SolveResult>> singles;
  for (const SolveRequest& req : reqs) {
    singles.push_back(indep_svc.submit(req));
  }
  auto batched = batch_svc.submit_batch(std::move(reqs)).get();
  ASSERT_EQ(batched.size(), keep.size());
  for (unsigned i = 0; i < keep.size(); ++i) {
    expect_equal_core(batched[i], singles[i].get(),
                      "cacheless instance " + std::to_string(i));
  }
}

TEST(ServiceBatch, DedupedResultsSurviveTheIndependentValidator) {
  // Dedup soundness: every fanned-out result must be a valid MINIMUM cover
  // of its own instance per the independent oracle — not merely equal to
  // the representative's answer.
  std::vector<Cotree> keep;
  util::Rng rng(91001);
  for (unsigned i = 0; i < 24; ++i) {
    keep.push_back(testing::random_cotree(2 + i * 3, 91100 + i));
    keep.push_back(testing::random_twin(keep.back(), rng));  // same class
    keep.push_back(keep[keep.size() - 2]);                   // exact dup
  }
  Service svc;
  std::vector<SolveRequest> reqs;
  for (const Cotree& t : keep) {
    reqs.push_back(SolveRequest{Instance::view(t), {}, {}});
  }
  auto results = svc.submit_batch(std::move(reqs)).get();
  ASSERT_EQ(results.size(), keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].error;
    const auto report = core::validate_path_cover(
        keep[i], results[i].cover, /*require_minimum=*/true);
    EXPECT_TRUE(report.ok) << "instance " << i << ": " << report.error;
  }
  const Service::Stats s = svc.stats();
  EXPECT_GE(s.batch_dedup_hits, keep.size() / 3);  // twins AND dups hit
}

TEST(ServiceBatch, EmptySingletonAndAllDuplicateShapes) {
  Service svc;
  EXPECT_TRUE(svc.submit_batch(std::vector<SolveRequest>{}).get().empty());

  const Cotree t = Cotree::parse("(* (+ a b) (+ c d))");
  auto single = svc.submit_batch(
      std::vector<SolveRequest>{SolveRequest{Instance::view(t), {}, {}}});
  auto direct = svc.submit(SolveRequest{Instance::view(t), {}, {}});
  auto sres = single.get();
  ASSERT_EQ(sres.size(), 1u);
  expect_equal_core(sres[0], direct.get(), "singleton");

  // All-duplicate batch: one solve, k - 1 dedup hits, identical answers.
  const std::uint64_t dedup_before = svc.stats().batch_dedup_hits;
  std::vector<SolveRequest> dups;
  for (unsigned i = 0; i < 16; ++i) {
    dups.push_back(SolveRequest{Instance::view(t), {}, {}});
  }
  auto dres = svc.submit_batch(std::move(dups)).get();
  ASSERT_EQ(dres.size(), 16u);
  for (const SolveResult& r : dres) {
    ASSERT_TRUE(r.ok) << r.error;
    expect_equal_core(r, dres[0], "all-duplicate member");
  }
  EXPECT_EQ(svc.stats().batch_dedup_hits - dedup_before, 15u);
}

TEST(ServiceBatch, InstanceConvenienceOverloadMatchesRequestForm) {
  Service svc;
  const Cotree a = Cotree::parse("(+ (* a b) c)");
  const Cotree b = Cotree::parse("(* (+ x y) (+ z w))");
  const std::vector<Instance> instances = {Instance::view(a),
                                           Instance::view(b)};
  auto res = svc.submit_batch(std::span<const Instance>(instances)).get();
  ASSERT_EQ(res.size(), 2u);
  expect_equal_core(res[0], svc.submit({Instance::view(a), {}, {}}).get(),
                    "span overload slot 0");
  expect_equal_core(res[1], svc.submit({Instance::view(b), {}, {}}).get(),
                    "span overload slot 1");
}

TEST(ServiceBatch, FailuresAreIsolatedPerSlot) {
  Service svc;
  std::vector<SolveRequest> reqs;
  reqs.push_back(SolveRequest{Instance::text("(* a (+ b c))"), {}, "good0"});
  reqs.push_back(SolveRequest{Instance::text("(* broken"), {}, "bad1"});
  reqs.push_back(SolveRequest{Instance::text("(+ x y)"), {}, "good2"});
  reqs.push_back(SolveRequest{Instance::text(""), {}, "bad3"});
  // A duplicate of a failing slot: failure must fan out per slot too.
  reqs.push_back(SolveRequest{Instance::text("(* broken"), {}, "bad4"});
  auto res = svc.submit_batch(std::move(reqs)).get();
  ASSERT_EQ(res.size(), 5u);
  EXPECT_TRUE(res[0].ok) << res[0].error;
  EXPECT_FALSE(res[1].ok);
  EXPECT_FALSE(res[1].error.empty());
  EXPECT_TRUE(res[2].ok) << res[2].error;
  EXPECT_FALSE(res[3].ok);
  EXPECT_FALSE(res[4].ok);
  // Labels ride through both the success and failure paths.
  EXPECT_EQ(res[0].label, "good0");
  EXPECT_EQ(res[1].label, "bad1");
  EXPECT_EQ(res[4].label, "bad4");
}

TEST(ServiceBatch, DrainRefusesWholeBatchStructurally) {
  Service svc;
  svc.drain();
  std::vector<SolveRequest> reqs;
  reqs.push_back(SolveRequest{Instance::text("(+ a b)"), {}, "x"});
  reqs.push_back(SolveRequest{Instance::text("(* c d)"), {}, "y"});
  auto res = svc.submit_batch(std::move(reqs)).get();
  ASSERT_EQ(res.size(), 2u);
  for (const SolveResult& r : res) {
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, "service is draining");
  }
}

// ---------------------------------------------------------- Solver lane

TEST(SolverBatch, RerouteBitwiseEqualToPerInstanceSolves) {
  // Small instances (rerouted through the fused core), large instances
  // (budgeted pool path), duplicates, and a parse failure — positional
  // results must match per-instance solve() exactly.
  std::vector<Cotree> keep;
  for (unsigned i = 0; i < 40; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 7) % 70, 73000 + i));
  }
  keep.push_back(cograph::clique(300));  // above any small-lane floor
  std::vector<SolveRequest> reqs;
  for (const Cotree& t : keep) {
    reqs.push_back(SolveRequest{Instance::view(t), {}, {}});
  }
  reqs.push_back(reqs[3]);  // exact duplicate -> IdenticalTree group
  reqs.push_back(SolveRequest{Instance::text("(+ oops"), {}, "broken"});

  SolveOptions defaults;
  defaults.validate = true;
  defaults.batch_workers = 3;
  Solver solver(defaults);
  const auto batch = solver.solve_batch(reqs);
  ASSERT_EQ(batch.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    expect_equal_core(batch[i], solver.solve(reqs[i]),
                      "solver batch slot " + std::to_string(i));
  }
  EXPECT_FALSE(batch.back().ok);  // the parse failure stayed isolated
}

TEST(SolverBatch, AdaptiveBatchStillBitwiseEqualToSequential) {
  // The adaptive_test acceptance shape, against the rerouted lane: small
  // Adaptive instances through solve_batch == per-request Sequential.
  std::vector<Cotree> keep;
  for (unsigned i = 0; i < 60; ++i) {
    keep.push_back(testing::random_cotree(1 + (i * 11) % 50, 74000 + i));
  }
  SolveOptions aopt;
  aopt.backend = Backend::Adaptive;
  Solver asolver(aopt);
  std::vector<SolveRequest> reqs;
  for (const Cotree& t : keep) {
    reqs.push_back(SolveRequest{Instance::view(t), {}, {}});
  }
  const auto ares = asolver.solve_batch(reqs);

  SolveOptions sopt;
  sopt.backend = Backend::Sequential;
  const Solver ssolver(sopt);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const SolveResult sres = ssolver.solve(Instance::view(keep[i]));
    ASSERT_TRUE(ares[i].ok) << ares[i].error;
    EXPECT_EQ(ares[i].routed, Backend::Sequential);
    EXPECT_EQ(ares[i].cover.paths, sres.cover.paths) << i;
    EXPECT_EQ(ares[i].optimal_size, sres.optimal_size) << i;
    EXPECT_EQ(ares[i].hamiltonian_cycle, sres.hamiltonian_cycle) << i;
  }
}

// -------------------------------------------------------------- stress

TEST(BatchStress, ConcurrentBatchesSinglesAndDrainStayStructured) {
  // TSan coverage: batches and singles racing through one small-queue
  // service while drain fires mid-flight. Every future must resolve to ok
  // or a structured refusal — no crashes, no hangs, no lost sinks.
  Service::Options sopts;
  sopts.workers = 3;
  sopts.queue_capacity = 8;
  Service svc(sopts);

  std::vector<Cotree> keep;
  for (unsigned i = 0; i < 12; ++i) {
    keep.push_back(testing::random_cotree(2 + i * 5, 95000 + i));
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> resolved{0};
  for (unsigned tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&, tid] {
      while (!go.load()) std::this_thread::yield();
      for (unsigned round = 0; round < 10; ++round) {
        if ((tid + round) % 2 == 0) {
          std::vector<SolveRequest> reqs;
          for (unsigned k = 0; k < 6; ++k) {
            reqs.push_back(SolveRequest{
                Instance::view(keep[(tid * 7 + round + k) % keep.size()]),
                {},
                {}});
          }
          auto res = svc.submit_batch(std::move(reqs)).get();
          for (const SolveResult& r : res) {
            EXPECT_TRUE(r.ok || !r.error.empty());
          }
          resolved.fetch_add(res.size());
        } else {
          auto res =
              svc.submit(SolveRequest{
                     Instance::view(keep[(tid + round) % keep.size()]),
                     {},
                     {}})
                  .get();
          EXPECT_TRUE(res.ok || !res.error.empty());
          resolved.fetch_add(1);
        }
      }
    });
  }
  go.store(true);
  std::this_thread::yield();
  svc.drain();  // races the submitters: refusals must stay structured
  for (auto& t : threads) t.join();
  const Service::Stats s = svc.stats();
  EXPECT_EQ(s.completed, s.submitted);
  EXPECT_EQ(resolved.load(), s.submitted);
}

// ------------------------------------------------------------- protocol

TEST(BatchProtocol, RequestRoundTripsThroughParsers) {
  const std::string text = "(* (+ a b) c)";
  const Cotree t = Cotree::parse(text);
  const std::string sig =
      canonical_form(t, /*with_algebra_key=*/false).signature;
  const proto::BatchItem items[] = {
      proto::BatchItem{false, text},
      proto::BatchItem{true, sig},
  };
  proto::WireOptions wopts;
  wopts.flags = proto::kOptWantVerdicts | proto::kOptValidate;
  std::string wire;
  proto::append_batch_request(wire, 42, wopts, items);

  std::string payload;
  ASSERT_EQ(proto::extract_frame(wire, &payload), proto::Extract::Frame);
  proto::Request req;
  ASSERT_TRUE(proto::parse_request(payload, &req));
  EXPECT_EQ(req.verb, proto::Verb::BatchSolve);
  EXPECT_EQ(req.seq, 42u);
  EXPECT_EQ(req.opts, wopts);

  std::vector<proto::BatchItem> parsed;
  std::string why;
  ASSERT_TRUE(proto::parse_batch_body(req.body, proto::kMaxBatchItems,
                                      &parsed, &why))
      << why;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_FALSE(parsed[0].is_signature);
  EXPECT_EQ(parsed[0].body, text);
  EXPECT_TRUE(parsed[1].is_signature);
  EXPECT_EQ(parsed[1].body, sig);
}

TEST(BatchProtocol, MalformedBodiesAreRejectedWithStructuredReasons) {
  std::vector<proto::BatchItem> items;
  std::string why;
  const auto why_of = [&](std::string body, std::size_t cap) {
    EXPECT_FALSE(proto::parse_batch_body(body, cap, &items, &why));
    EXPECT_TRUE(items.empty());
    return why;
  };
  using std::string;
  // Truncated before the count.
  EXPECT_NE(why_of(string("\x01", 1), 8).find("truncated"), string::npos);
  // Zero items.
  EXPECT_NE(why_of(string("\x00\x00", 2), 8).find("zero"), string::npos);
  // Count above the operational cap.
  EXPECT_NE(why_of(string("\x09\x00", 2), 8).find("exceeds cap"),
            string::npos);
  // Count above the protocol ceiling, whatever the server configured.
  EXPECT_NE(why_of(string("\xff\x7f", 2), 1u << 20).find("exceeds cap"),
            string::npos);
  // Item header truncated.
  EXPECT_NE(why_of(string("\x01\x00\x01", 3), 8).find("header truncated"),
            string::npos);
  // Unknown item kind.
  EXPECT_NE(why_of(string("\x01\x00\x07\x01\x00\x00\x00x", 8), 8)
                .find("unknown kind"),
            string::npos);
  // Empty item body.
  EXPECT_NE(why_of(string("\x01\x00\x01\x00\x00\x00\x00", 7), 8)
                .find("is empty"),
            string::npos);
  // Item body truncated (claims 4 bytes, has 1).
  EXPECT_NE(why_of(string("\x01\x00\x01\x04\x00\x00\x00x", 8), 8)
                .find("body truncated"),
            string::npos);
  // Trailing bytes after the last item.
  EXPECT_NE(why_of(string("\x01\x00\x01\x01\x00\x00\x00xZZ", 10), 8)
                .find("trailing"),
            string::npos);
}

TEST(BatchProtocol, ResponseRoundTripsAndRejectsTruncation) {
  SolveResult ok_res;
  ok_res.ok = true;
  ok_res.vertex_count = 3;
  ok_res.optimal_size = 1;
  ok_res.minimum = true;
  ok_res.hamiltonian_path = true;
  ok_res.cover.paths = {{0, 2, 1}};
  const proto::BatchResponseEntry entries[] = {
      proto::BatchResponseEntry{proto::Status::Ok, &ok_res, {}},
      proto::BatchResponseEntry{proto::Status::InvalidSignature, nullptr,
                                "bad sig"},
      proto::BatchResponseEntry{proto::Status::SolveError, nullptr,
                                "engine said no"},
  };
  std::string frame = proto::encode_batch_response_frame(7, entries);
  std::string payload;
  ASSERT_EQ(proto::extract_frame(frame, &payload), proto::Extract::Frame);
  proto::Response out;
  ASSERT_TRUE(proto::parse_response(payload, &out));
  EXPECT_EQ(out.verb, proto::Verb::BatchSolve);
  EXPECT_EQ(out.seq, 7u);
  EXPECT_EQ(out.status, proto::Status::Ok);
  ASSERT_EQ(out.batch.size(), 3u);
  EXPECT_EQ(out.batch[0].status, proto::Status::Ok);
  EXPECT_TRUE(out.batch[0].result.ok);
  EXPECT_EQ(out.batch[0].result.paths,
            (std::vector<std::vector<std::uint32_t>>{{0, 2, 1}}));
  EXPECT_EQ(out.batch[1].status, proto::Status::InvalidSignature);
  EXPECT_EQ(out.batch[1].error, "bad sig");
  EXPECT_EQ(out.batch[2].status, proto::Status::SolveError);
  EXPECT_EQ(out.batch[2].error, "engine said no");

  // Exact-consumption hardening: every strict prefix must be rejected.
  for (std::size_t cut = 10; cut < payload.size(); ++cut) {
    EXPECT_FALSE(proto::parse_response(
        std::string_view(payload).substr(0, cut), &out))
        << "prefix of " << cut << " bytes decoded";
  }
}

// --------------------------------------------------------------- daemon

struct DaemonFixture {
  explicit DaemonFixture(net::Server::Options opts = {}) {
    opts.port = 0;
    server = std::make_unique<net::Server>(std::move(opts));
    thread = std::thread([this] { server->run(); });
  }
  ~DaemonFixture() {
    if (server != nullptr) {
      server->request_drain();
      thread.join();
    }
  }
  [[nodiscard]] net::Client connect() const {
    return net::Client("127.0.0.1", server->port());
  }

  std::unique_ptr<net::Server> server;
  std::thread thread;
};

TEST(DaemonBatch, OneFrameDifferentialAgainstInProcessService) {
  DaemonFixture daemon;
  net::Client cli = daemon.connect();
  Service svc;

  std::vector<Cotree> keep;
  std::vector<std::string> texts;
  std::vector<std::string> sigs;
  for (unsigned i = 0; i < 10; ++i) {
    keep.push_back(testing::random_cotree(2 + i * 9, 97000 + i));
    texts.push_back(keep.back().format());
    sigs.push_back(
        canonical_form(keep.back(), /*with_algebra_key=*/false).signature);
  }
  std::vector<proto::BatchItem> items;
  for (unsigned i = 0; i < keep.size(); ++i) {
    items.push_back(proto::BatchItem{false, texts[i]});
    items.push_back(proto::BatchItem{true, sigs[i]});  // canonical twin
  }
  const proto::Response res = cli.solve_batch(items);
  ASSERT_EQ(res.status, proto::Status::Ok) << res.error;
  ASSERT_EQ(res.batch.size(), items.size());
  for (unsigned i = 0; i < keep.size(); ++i) {
    const SolveResult local =
        svc.submit({Instance::view(keep[i]), {}, {}}).get();
    ASSERT_TRUE(local.ok) << local.error;
    for (const std::size_t slot : {2 * i, 2 * i + 1}) {
      const auto& got = res.batch[slot];
      ASSERT_EQ(got.status, proto::Status::Ok) << got.error;
      EXPECT_EQ(got.result.vertex_count, local.vertex_count) << slot;
      EXPECT_EQ(got.result.optimal_size, local.optimal_size) << slot;
      EXPECT_EQ(got.result.minimum, local.minimum) << slot;
      EXPECT_EQ(got.result.paths.size(), local.cover.paths.size()) << slot;
    }
  }

  // The daemon's dedup counters moved: each signature item shares its text
  // twin's canonical group inside the one batch.
  const proto::Response st = cli.stats();
  std::uint64_t batches = 0, dedup = 0;
  for (const auto& [k, v] : st.stats) {
    if (k == "batch_submits") batches = v;
    if (k == "batch_dedup_hits") dedup = v;
  }
  EXPECT_EQ(batches, 1u);
  EXPECT_GE(dedup, keep.size());
}

TEST(DaemonBatch, PerSlotInvalidSignatureLeavesTheRestSolving) {
  DaemonFixture daemon;
  net::Client cli = daemon.connect();
  const std::string good_text = "(* (+ a b) c)";
  const std::string bad_sig = "\x07\x07\x07";  // unknown tag bytes
  const std::string bad_text = "(* broken";
  std::vector<proto::BatchItem> items = {
      proto::BatchItem{false, good_text},
      proto::BatchItem{true, bad_sig},
      proto::BatchItem{false, bad_text},
  };
  const proto::Response res = cli.solve_batch(items);
  ASSERT_EQ(res.status, proto::Status::Ok) << res.error;
  ASSERT_EQ(res.batch.size(), 3u);
  EXPECT_EQ(res.batch[0].status, proto::Status::Ok) << res.batch[0].error;
  EXPECT_TRUE(res.batch[0].result.ok);
  EXPECT_EQ(res.batch[1].status, proto::Status::InvalidSignature);
  EXPECT_FALSE(res.batch[1].error.empty());
  EXPECT_EQ(res.batch[2].status, proto::Status::SolveError);
  EXPECT_FALSE(res.batch[2].error.empty());
}

TEST(DaemonBatch, StructuralRefusalsComeBackAsBadFrame) {
  net::Server::Options opts;
  opts.max_batch_items = 4;
  DaemonFixture daemon(std::move(opts));
  net::Client cli = daemon.connect();

  // Zero items: the encoder will happily write count 0; the server must
  // refuse it with a reason, not dispatch it.
  const proto::Response zero = cli.solve_batch({});
  EXPECT_EQ(zero.status, proto::Status::BadFrame);
  EXPECT_NE(zero.error.find("zero"), std::string::npos) << zero.error;

  // Above the server's operational cap.
  const std::string text = "(+ a b)";
  std::vector<proto::BatchItem> many(5, proto::BatchItem{false, text});
  const proto::Response big = cli.solve_batch(many);
  EXPECT_EQ(big.status, proto::Status::BadFrame);
  EXPECT_NE(big.error.find("exceeds cap"), std::string::npos) << big.error;

  // The connection survives structural refusals: a well-formed batch on
  // the same socket still solves.
  std::vector<proto::BatchItem> fine(3, proto::BatchItem{false, text});
  const proto::Response ok = cli.solve_batch(fine);
  ASSERT_EQ(ok.status, proto::Status::Ok) << ok.error;
  ASSERT_EQ(ok.batch.size(), 3u);
  for (const auto& slot : ok.batch) {
    EXPECT_EQ(slot.status, proto::Status::Ok) << slot.error;
  }
}

}  // namespace
}  // namespace copath
