// Prefix-sum primitives (Lemma 5.1(2)) under parameterized (n, P) sweeps.
#include <gtest/gtest.h>

#include <numeric>

#include "par/scan.hpp"
#include "util/rng.hpp"

namespace copath::par {
namespace {

using pram::Array;
using pram::Ctx;
using pram::Machine;
using pram::Policy;

struct Shape {
  std::size_t n;
  std::size_t p;
};

class ScanSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ScanSweep, ExclusiveMatchesSerial) {
  const auto [n, p] = GetParam();
  Machine m({Policy::EREW, 1, p});
  util::Rng rng(n * 31 + p);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.range(-9, 9);
  Array<std::int64_t> a(m, v);
  exclusive_scan(m, a);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.host(i), acc) << "i=" << i;
    acc += v[i];
  }
}

TEST_P(ScanSweep, InclusiveMatchesSerial) {
  const auto [n, p] = GetParam();
  Machine m({Policy::EREW, 1, p});
  util::Rng rng(n * 37 + p);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.range(-9, 9);
  Array<std::int64_t> a(m, v);
  inclusive_scan(m, a);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += v[i];
    ASSERT_EQ(a.host(i), acc) << "i=" << i;
  }
}

TEST_P(ScanSweep, ReduceMatchesAccumulate) {
  const auto [n, p] = GetParam();
  Machine m({Policy::EREW, 1, p});
  util::Rng rng(n * 41 + p);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.range(-100, 100);
  Array<std::int64_t> a(m, v);
  EXPECT_EQ(reduce(m, a),
            std::accumulate(v.begin(), v.end(), std::int64_t{0}));
}

TEST_P(ScanSweep, MaxScanWorks) {
  const auto [n, p] = GetParam();
  Machine m({Policy::EREW, 1, p});
  util::Rng rng(n * 43 + p);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.range(-50, 50);
  Array<std::int64_t> a(m, v);
  inclusive_scan(m, a, Max<std::int64_t>{});
  std::int64_t best = std::numeric_limits<std::int64_t>::lowest();
  for (std::size_t i = 0; i < n; ++i) {
    best = std::max(best, v[i]);
    ASSERT_EQ(a.host(i), best);
  }
}

TEST_P(ScanSweep, SegmentedScanResetsAtFlags) {
  const auto [n, p] = GetParam();
  Machine m({Policy::EREW, 1, p});
  util::Rng rng(n * 47 + p);
  std::vector<std::int64_t> v(n);
  std::vector<std::uint8_t> f(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = rng.range(0, 9);
    f[i] = (i == 0 || rng.chance(0.2)) ? 1 : 0;
  }
  Array<std::int64_t> a(m, v);
  Array<std::uint8_t> flags(m, f);
  segmented_inclusive_scan(m, a, flags);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (f[i]) acc = 0;
    acc += v[i];
    ASSERT_EQ(a.host(i), acc) << "i=" << i;
  }
}

TEST_P(ScanSweep, CompactKeepsMarkedIndicesInOrder) {
  const auto [n, p] = GetParam();
  Machine m({Policy::EREW, 1, p});
  util::Rng rng(n * 53 + p);
  std::vector<std::uint8_t> keep(n, 0);
  std::vector<std::int64_t> want;
  for (std::size_t i = 0; i < n; ++i) {
    keep[i] = rng.chance(0.4) ? 1 : 0;
    if (keep[i]) want.push_back(static_cast<std::int64_t>(i));
  }
  Array<std::uint8_t> k(m, keep);
  Array<std::int64_t> out(m, n, -1);
  const std::size_t cnt = compact_indices(m, k, out);
  ASSERT_EQ(cnt, want.size());
  for (std::size_t i = 0; i < cnt; ++i) ASSERT_EQ(out.host(i), want[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScanSweep,
    ::testing::Values(Shape{1, 1}, Shape{2, 1}, Shape{7, 3}, Shape{16, 4},
                      Shape{100, 1}, Shape{100, 7}, Shape{100, 100},
                      Shape{257, 13}, Shape{1024, 32}, Shape{1000, 999}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.n) + "_p" +
             std::to_string(info.param.p);
    });

TEST(ScanCost, WorkIsLinearAndTimeLogarithmic) {
  // With P = n / log2(n), the scan must finish in O(log n) steps and O(n)
  // work (the Lemma 5.1 bound).
  const std::size_t n = 1 << 14;
  const std::size_t logn = 14;
  Machine m({Policy::EREW, 1, n / logn});
  Array<std::int64_t> a(m, n, 1);
  exclusive_scan(m, a);
  EXPECT_LE(m.stats().steps, 8 * logn);
  EXPECT_LE(m.stats().work, 8 * n);
}

TEST(ScanEdge, NonCommutativeOperatorRespectsOrder) {
  struct Take {
    std::int64_t v = -1;
  };
  struct TakeLast {
    static constexpr Take identity() { return Take{}; }
    Take operator()(Take a, Take b) const { return b.v >= 0 ? b : a; }
  };
  Machine m({Policy::EREW, 1, 5});
  std::vector<Take> v(37);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i].v = (i % 3 == 0) ? static_cast<std::int64_t>(i) : -1;
  Array<Take> a(m, v);
  inclusive_scan(m, a, TakeLast{});
  std::int64_t cur = -1;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].v >= 0) cur = v[i].v;
    ASSERT_EQ(a.host(i).v, cur);
  }
}

}  // namespace
}  // namespace copath::par
