// Instance generators: structural invariants and closed-form path cover
// sizes for the classic families.
#include <gtest/gtest.h>

#include "cograph/families.hpp"
#include "cograph/graph.hpp"
#include "core/count.hpp"

namespace copath::cograph {
namespace {

TEST(Families, CliqueIsHamiltonian) {
  for (const std::size_t n : {1u, 2u, 3u, 10u, 64u}) {
    EXPECT_EQ(core::path_cover_size(clique(n)), 1) << "n=" << n;
  }
}

TEST(Families, IndependentSetNeedsOnePathPerVertex) {
  for (const std::size_t n : {1u, 2u, 5u, 33u}) {
    EXPECT_EQ(core::path_cover_size(independent_set(n)),
              static_cast<std::int64_t>(n));
  }
}

TEST(Families, StarNeedsNMinusOnePaths) {
  // K_{1,n}: the centre can join only two leaves into one path.
  for (const std::size_t n : {2u, 3u, 10u}) {
    EXPECT_EQ(core::path_cover_size(star(n)),
              static_cast<std::int64_t>(n) - 1);
  }
}

TEST(Families, CompleteBipartiteFormula) {
  // K_{a,b}, a >= b: minimum path cover has max(a - b, 1) paths.
  for (const std::size_t a : {1u, 2u, 4u, 9u}) {
    for (const std::size_t b : {1u, 2u, 4u, 9u}) {
      const auto want = std::max<std::int64_t>(
          static_cast<std::int64_t>(std::max(a, b)) -
              static_cast<std::int64_t>(std::min(a, b)),
          1);
      EXPECT_EQ(core::path_cover_size(complete_bipartite(a, b)), want)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Families, OrInstanceFormula) {
  // k ones among n bits: the minimum path cover has n - k + 2 paths.
  for (const std::size_t n : {1u, 4u, 9u}) {
    for (std::size_t k = 0; k <= n; ++k) {
      std::vector<std::uint8_t> bits(n, 0);
      for (std::size_t i = 0; i < k; ++i) bits[i] = 1;
      const Cotree t = or_instance(bits);
      EXPECT_EQ(t.vertex_count(), n + 3);
      EXPECT_EQ(core::path_cover_size(t),
                static_cast<std::int64_t>(n - k) + 2)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Families, ThresholdGraphAlternationAndSize) {
  const std::vector<std::uint8_t> bits{1, 0, 1, 1, 0, 0, 1};
  const Cotree t = threshold_graph(bits);
  EXPECT_EQ(t.vertex_count(), bits.size() + 1);
  t.validate();  // alternation enforced by validate
}

TEST(Families, ThresholdAllOnesIsClique) {
  const Cotree t = threshold_graph({1, 1, 1});
  EXPECT_EQ(core::path_cover_size(t), 1);
  const Graph g = Graph::from_cotree(t);
  EXPECT_EQ(g.edge_count(), 6u);
}

TEST(Families, CaterpillarHeightIsLinear) {
  const Cotree t = caterpillar(50, NodeKind::Join);
  EXPECT_EQ(t.vertex_count(), 50u);
  // Walk from the deepest leaf to the root: depth must be ~n/… linear.
  std::size_t max_depth = 0;
  for (std::size_t v = 0; v < t.size(); ++v) {
    std::size_t d = 0;
    for (NodeId u = static_cast<NodeId>(v); u != kNull; u = t.parent(u)) ++d;
    max_depth = std::max(max_depth, d);
  }
  EXPECT_GE(max_depth, 25u);
}

TEST(Families, CaterpillarJoinTopIsHamiltonian) {
  // Join-rooted caterpillars stay Hamiltonian: each join adds a vertex
  // adjacent to everything below.
  for (const std::size_t n : {2u, 5u, 21u}) {
    EXPECT_EQ(core::path_cover_size(caterpillar(n, NodeKind::Join)), 1)
        << "n=" << n;
  }
}

TEST(Families, RandomCotreeRespectsVertexCountAndValidates) {
  for (unsigned seed = 0; seed < 30; ++seed) {
    RandomCotreeOptions opt;
    opt.seed = seed;
    opt.skew = (seed % 3) * 0.45;
    opt.mean_arity = 2.0 + (seed % 4) * 0.8;
    const std::size_t n = 1 + seed * 7 % 90;
    const Cotree t = random_cotree(n, opt);
    EXPECT_EQ(t.vertex_count(), n);
    t.validate();
  }
}

TEST(Families, RandomCotreeIsDeterministicPerSeed) {
  RandomCotreeOptions opt;
  opt.seed = 99;
  EXPECT_EQ(random_cotree(40, opt).format(), random_cotree(40, opt).format());
}

}  // namespace
}  // namespace copath::cograph
