// List ranking (Lemma 5.1(1)): Wyllie pointer jumping and randomized
// contraction, against a serial oracle, over list-shape sweeps.
#include <gtest/gtest.h>

#include <numeric>

#include "par/list_ranking.hpp"
#include "util/rng.hpp"

namespace copath::par {
namespace {

using pram::Array;
using pram::Machine;
using pram::Policy;

struct Instance {
  std::vector<NodeId> next;
  std::vector<std::int64_t> want;
};

/// A forest of random lists over a random permutation of [0, n).
Instance random_lists(std::size_t n, std::size_t max_len, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n; i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  Instance inst;
  inst.next.assign(n, kNull);
  inst.want.assign(n, 0);
  std::size_t start = 0;
  while (start < n) {
    const std::size_t len =
        1 + rng.below(std::min<std::size_t>(n - start, max_len));
    for (std::size_t i = 0; i < len; ++i) {
      inst.want[static_cast<std::size_t>(perm[start + i])] =
          static_cast<std::int64_t>(len - 1 - i);
      if (i + 1 < len)
        inst.next[static_cast<std::size_t>(perm[start + i])] =
            perm[start + i + 1];
    }
    start += len;
  }
  return inst;
}

struct Shape {
  std::size_t n;
  std::size_t p;
  std::size_t max_len;
};

class RankSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(RankSweep, WyllieMatchesOracle) {
  const auto [n, p, max_len] = GetParam();
  Machine m({Policy::EREW, 1, p});
  const Instance inst = random_lists(n, max_len, n * 7 + p);
  Array<NodeId> next(m, inst.next);
  Array<std::int64_t> rank(m, n, -1);
  list_rank_wyllie(m, next, rank);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(rank.host(i), inst.want[i]);
}

TEST_P(RankSweep, ContractMatchesOracle) {
  const auto [n, p, max_len] = GetParam();
  Machine m({Policy::EREW, 1, p});
  const Instance inst = random_lists(n, max_len, n * 11 + p);
  Array<NodeId> next(m, inst.next);
  Array<std::int64_t> rank(m, n, -1);
  list_rank_contract(m, next, rank, 999 + n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(rank.host(i), inst.want[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RankSweep,
    ::testing::Values(Shape{1, 1, 1}, Shape{2, 1, 2}, Shape{10, 3, 10},
                      Shape{64, 8, 64}, Shape{200, 5, 7},
                      Shape{500, 16, 500}, Shape{333, 4, 40}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.n) + "_p" +
             std::to_string(info.param.p) + "_len" +
             std::to_string(info.param.max_len);
    });

TEST(RankSingleList, FullChain) {
  const std::size_t n = 300;
  Machine m({Policy::EREW, 1, 16});
  std::vector<NodeId> next(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    next[i] = static_cast<NodeId>(i + 1);
  next[n - 1] = kNull;
  Array<NodeId> nx(m, next);
  Array<std::int64_t> rank(m, n, -1);
  list_rank_contract(m, nx, rank);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(rank.host(i), static_cast<std::int64_t>(n - 1 - i));
}

TEST(RankCost, ContractWorkIsLinearWyllieIsNot) {
  // The asymptotic claim: contraction ranking does O(n) work while Wyllie
  // does Θ(n log n). Constants put the absolute crossover beyond small n,
  // so we assert the *growth rates*: doubling n four times must leave
  // contract's work/n (roughly) flat while Wyllie's grows with log n.
  const auto run = [](std::size_t n, bool use_contract) {
    std::size_t logn = 1;
    while ((std::size_t{1} << (logn + 1)) <= n) ++logn;
    Machine m({Policy::Unchecked, 1, n / logn});
    std::vector<NodeId> next(n);
    for (std::size_t i = 0; i + 1 < n; ++i)
      next[i] = static_cast<NodeId>(i + 1);
    next[n - 1] = kNull;
    Array<NodeId> nx(m, next);
    Array<std::int64_t> rank(m, n, -1);
    if (use_contract) {
      list_rank_contract(m, nx, rank);
    } else {
      list_rank_wyllie(m, nx, rank);
    }
    return static_cast<double>(m.stats().work) / static_cast<double>(n);
  };
  const double c_small = run(1 << 10, true);
  const double c_big = run(1 << 14, true);
  const double w_small = run(1 << 10, false);
  const double w_big = run(1 << 14, false);
  EXPECT_LT(c_big, 1.5 * c_small) << "contract work/n should stay flat";
  EXPECT_GT(w_big, 1.25 * w_small) << "wyllie work/n should grow ~log n";
}

TEST(RankEdge, AllSingletons) {
  Machine m({Policy::EREW, 1, 4});
  Array<NodeId> next(m, std::vector<NodeId>(17, kNull));
  Array<std::int64_t> rank(m, 17, -1);
  list_rank_contract(m, next, rank);
  for (std::size_t i = 0; i < 17; ++i) ASSERT_EQ(rank.host(i), 0);
}

}  // namespace
}  // namespace copath::par
