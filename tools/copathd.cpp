// copathd — serve minimum path cover over TCP.
//
//   copathd [--host 127.0.0.1] [--port 7431] [--workers N]
//           [--queue N] [--window N] [--max-batch N] [--no-cache]
//           [--cache-dir DIR] [--max-parked N] [--max-parked-bytes N]
//           [--idle-timeout MS] [--request-timeout MS] [--watchdog-ms MS]
//
// One process, one event-loop thread, N solver workers. SIGTERM/SIGINT
// drain gracefully: in-flight requests finish, new ones get structured
// Draining refusals, and the process exits 0 once the last connection
// closes. See src/net/server.hpp for the serving model and DESIGN.md §9
// for the wire protocol.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "net/server.hpp"

namespace {

copath::net::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--workers N] [--queue N] "
               "[--window N] [--max-batch N] [--no-cache] "
               "[--cache-dir DIR] [--max-parked N] [--max-parked-bytes N] "
               "[--idle-timeout MS] [--request-timeout MS] "
               "[--watchdog-ms MS]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  copath::net::Server::Options opts;
  opts.port = 7431;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--host") {
      opts.host = value();
    } else if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--workers") {
      opts.service.workers = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--queue") {
      opts.service.queue_capacity =
          static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--window") {
      opts.inflight_window = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--max-batch") {
      // Operational cap on BatchSolve items per frame (protocol ceiling
      // still applies above it).
      opts.max_batch_items = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--no-cache") {
      opts.service.use_cache = false;
    } else if (arg == "--cache-dir") {
      // Persistent L2 under the RAM cache: survives restarts, shared by
      // any number of copathd processes pointed at the same directory.
      opts.service.persist.dir = value();
    } else if (arg == "--max-parked") {
      // Overload bound: queue-refused requests parked per connection
      // before the server answers Overloaded (0 = never park).
      opts.max_parked = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--max-parked-bytes") {
      // Aggregate decoded bytes parked across all connections.
      opts.max_parked_bytes = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--idle-timeout") {
      // Close connections with no protocol progress and nothing in flight
      // after this many ms (0 = never; catches slowloris peers).
      opts.idle_timeout_ms =
          static_cast<std::uint32_t>(std::atol(value()));
    } else if (arg == "--request-timeout") {
      // Default deadline_ms for solve frames that carry none: still-queued
      // requests past it are shed with DeadlineExceeded (0 = none).
      opts.default_deadline_ms =
          static_cast<std::uint32_t>(std::atol(value()));
    } else if (arg == "--watchdog-ms") {
      // Worker watchdog: a solve with no progress heartbeat for this long
      // gets its cancel token tripped (cooperatively — threads are never
      // killed) and answers Cancelled/DeadlineExceeded. 0 = off.
      opts.service.watchdog_ms =
          static_cast<std::uint32_t>(std::atol(value()));
    } else {
      usage(argv[0]);
    }
  }

  try {
    const std::string host = opts.host;
    copath::net::Server server(std::move(opts));
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);  // peer resets surface as write errors
    std::printf("copathd listening on %s:%u\n", host.c_str(),
                server.port());
    std::fflush(stdout);
    server.run();
    g_server = nullptr;
    std::printf("copathd drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "copathd: %s\n", e.what());
    return 1;
  }
}
