// E10 — the service layer: canonical memo cache and duplicate coalescing.
//
// The acceptance claim for the service PR: warm-cache solve on repeated or
// permuted/relabeled instances is >= 5x faster than the cold path (a hit
// pays canonicalization + a cover remap instead of the full pipeline), and
// a duplicate-heavy concurrent burst computes once instead of N times.
// Run with --json to write BENCH_service.json for the perf trajectory.
#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "../tests/testing.hpp"  // the shared instance/twin generators
#include "bench_common.hpp"

namespace {

using namespace copath;

bench::JsonReport* g_json = nullptr;

/// Submits one request per instance and blocks until all are answered;
/// returns total wall ms.
double drain(Service& svc, const std::vector<Cotree>& instances) {
  util::WallTimer timer;
  std::vector<std::future<SolveResult>> futures;
  futures.reserve(instances.size());
  for (const auto& t : instances) {
    futures.push_back(svc.submit(SolveRequest{Instance::view(t), {}, {}}));
  }
  for (auto& f : futures) bench::require_ok(f.get());
  return timer.millis();
}

void cold_vs_warm_table() {
  bench::banner(
      "E10a: cold vs warm-cache throughput",
      "The same batch served three times: cold (every request computes), "
      "warm-repeat (identical instances; pure hits), warm-permuted "
      "(shuffled+relabeled twins; hits replayed through each instance's "
      "leaf permutation). Acceptance bar: warm >= 5x over cold.");
  util::Table table({"n", "batch", "phase", "total_ms", "speedup"});
  util::Rng twin_rng(20260726);
  for (const std::size_t lg : {12u, 14u}) {
    const std::size_t n = std::size_t{1} << lg;
    constexpr std::size_t kBatch = 16;
    std::vector<Cotree> cold_batch, twin_batch;
    for (std::size_t i = 0; i < kBatch; ++i) {
      cold_batch.push_back(testing::random_cotree(n, 880000 + lg * 100 + i));
      twin_batch.push_back(testing::random_twin(cold_batch.back(), twin_rng));
    }
    Service::Options sopts;
    sopts.solve.backend = Backend::Native;  // the production engine
    sopts.solve.compute_verdicts = false;   // time the engine + cache alone
    sopts.workers = 2;
    sopts.cache.capacity = 1024;
    Service svc(sopts);
    const double cold_ms = drain(svc, cold_batch);
    const double warm_repeat_ms = drain(svc, cold_batch);
    const double warm_permuted_ms = drain(svc, twin_batch);
    const auto row = [&](const char* phase, double ms) {
      table.row({util::Table::I(static_cast<long long>(n)),
                 util::Table::I(static_cast<long long>(kBatch)),
                 util::Table::S(phase), util::Table::F(ms),
                 util::Table::F(cold_ms / ms)});
      if (g_json != nullptr) {
        g_json->row("cold_vs_warm",
                    {{"n", static_cast<double>(n)},
                     {"batch", static_cast<double>(kBatch)},
                     {"total_ms", ms},
                     {"speedup_vs_cold", cold_ms / ms}},
                    {{"phase", phase}});
      }
    };
    row("cold", cold_ms);
    row("warm-repeat", warm_repeat_ms);
    row("warm-permuted", warm_permuted_ms);
    const auto stats = svc.stats();
    if (g_json != nullptr) {
      g_json->row("cold_vs_warm_stats",
                  {{"n", static_cast<double>(n)},
                   {"hits", static_cast<double>(stats.cache_hits)},
                   {"misses", static_cast<double>(stats.cache_misses)}});
    }
  }
  table.print(std::cout);
  std::cout << std::endl;
}

void coalescing_table() {
  bench::banner(
      "E10b: duplicate-coalescing on a concurrent identical burst",
      "32 concurrent submissions of one instance. With the cache+coalescer "
      "the engine runs once (everyone else parks on the in-flight compute "
      "or hits the cache); with it off, all 32 compute.");
  util::Table table({"n", "requests", "mode", "total_ms", "speedup"});
  for (const std::size_t lg : {13u, 14u}) {
    const std::size_t n = std::size_t{1} << lg;
    constexpr std::size_t kRequests = 32;
    const Cotree t = testing::random_cotree(n, 770000 + lg);
    const std::vector<Cotree> burst(kRequests, t);
    const auto run = [&](bool use_cache) {
      Service::Options sopts;
      sopts.solve.backend = Backend::Native;
      sopts.solve.compute_verdicts = false;
      sopts.workers = 4;
      sopts.use_cache = use_cache;
      Service svc(sopts);
      return drain(svc, burst);
    };
    const double uncached_ms = run(false);
    const double coalesced_ms = run(true);
    const auto row = [&](const char* mode, double ms) {
      table.row({util::Table::I(static_cast<long long>(n)),
                 util::Table::I(static_cast<long long>(kRequests)),
                 util::Table::S(mode), util::Table::F(ms),
                 util::Table::F(uncached_ms / ms)});
      if (g_json != nullptr) {
        g_json->row("coalescing",
                    {{"n", static_cast<double>(n)},
                     {"requests", static_cast<double>(kRequests)},
                     {"total_ms", ms},
                     {"speedup", uncached_ms / ms}},
                    {{"mode", mode}});
      }
    };
    row("no-cache", uncached_ms);
    row("cache+coalesce", coalesced_ms);
  }
  table.print(std::cout);
  std::cout << std::endl;
}

void overhead_table() {
  bench::banner(
      "E10c: miss-path overhead — Service(cache on, all distinct) vs Solver",
      "Worst case for the cache: every request is new, so every request "
      "pays canonicalization + insert on top of the solve. The overhead "
      "the memoization layer costs traffic that never repeats.");
  util::Table table({"n", "batch", "path", "total_ms", "overhead"});
  for (const std::size_t lg : {12u, 14u}) {
    const std::size_t n = std::size_t{1} << lg;
    constexpr std::size_t kBatch = 16;
    std::vector<Cotree> batch;
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push_back(testing::random_cotree(n, 660000 + lg * 100 + i));
    }
    SolveOptions solve;
    solve.backend = Backend::Native;
    solve.compute_verdicts = false;
    util::WallTimer timer;
    const Solver solver(solve);
    for (const auto& t : batch) {
      bench::require_ok(solver.solve(Instance::view(t)));
    }
    const double solver_ms = timer.millis();
    Service::Options sopts;
    sopts.solve = solve;
    sopts.workers = 1;  // apples-to-apples with the sequential Solver loop
    Service svc(sopts);
    const double service_ms = drain(svc, batch);
    const auto row = [&](const char* path, double ms) {
      table.row({util::Table::I(static_cast<long long>(n)),
                 util::Table::I(static_cast<long long>(kBatch)),
                 util::Table::S(path), util::Table::F(ms),
                 util::Table::F(ms / solver_ms)});
      if (g_json != nullptr) {
        g_json->row("miss_overhead",
                    {{"n", static_cast<double>(n)},
                     {"batch", static_cast<double>(kBatch)},
                     {"total_ms", ms},
                     {"overhead_vs_solver", ms / solver_ms}},
                    {{"path", path}});
      }
    };
    row("solver-direct", solver_ms);
    row("service-all-miss", service_ms);
  }
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_submit_warm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Cotree t = testing::random_cotree(n, 99);
  Service::Options sopts;
  sopts.solve.compute_verdicts = false;
  sopts.workers = 1;
  Service svc(sopts);
  svc.submit(SolveRequest{Instance::view(t), {}, {}}).get();  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        svc.submit(SolveRequest{Instance::view(t), {}, {}}).get());
  }
}
BENCHMARK(BM_submit_warm)->Range(1 << 10, 1 << 14);

void BM_canonical_form(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Cotree t = testing::random_cotree(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_form(t));
  }
}
BENCHMARK(BM_canonical_form)->Range(1 << 10, 1 << 16);

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json(&argc, argv, "service");
  g_json = &json;
  cold_vs_warm_table();
  coalescing_table();
  overhead_table();
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
