// Shared helpers for the benchmark harness. All benches drive the library
// through the copath::Solver facade — no pram::Machine wiring here.
//
// JSON mode: run any wired bench with `--json` and it writes one
// BENCH_<name>.json next to the working directory — a flat record list
// ({"bench": ..., "records": [{"section", ...fields}]}) so the perf
// trajectory across PRs is machine-readable (CI or scripts can diff it).
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "copath.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace copath::bench {

inline std::size_t log2z(std::size_t n) { return util::floor_log2(n); }

/// Solver options for the paper's setting: the chosen backend on an EREW
/// machine with the P = n / log2 n budget (processors = 0 resolves to it).
/// Conflict checking is disabled for the large sweeps (the test suite runs
/// the same code fully checked), and so are the result verdict sweeps —
/// no bench reads them, and the BM loops must time the engine alone.
inline SolveOptions paper_options(Backend backend, bool checked = false) {
  SolveOptions opts;
  opts.backend = backend;
  opts.policy = checked ? pram::Policy::EREW : pram::Policy::Unchecked;
  opts.compute_verdicts = false;
  return opts;
}

/// Benches have no recovery story: a failed solve is a harness bug.
inline const SolveResult& require_ok(const SolveResult& res) {
  if (!res.ok) {
    std::cerr << "solve failed: " << res.error << "\n";
    std::exit(1);
  }
  return res;
}

inline const CountResult& require_ok(const CountResult& res) {
  if (!res.ok) {
    std::cerr << "count failed: " << res.error << "\n";
    std::exit(1);
  }
  return res;
}

inline void banner(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Machine-readable bench output. Construct one per bench binary with the
/// bench's name; it consumes a `--json` argument from argv (so the flag
/// never reaches benchmark::Initialize) and, when present, writes
/// BENCH_<name>.json at destruction with every recorded row.
class JsonReport {
 public:
  JsonReport(int* argc, char** argv, std::string name)
      : name_(std::move(name)) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::string_view(argv[i]) == "--json") {
        enabled_ = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// One record: a section tag plus numeric and string fields.
  void row(const std::string& section,
           std::initializer_list<std::pair<const char*, double>> nums,
           std::initializer_list<std::pair<const char*, std::string>> strs =
               {}) {
    if (!enabled_) return;
    std::ostringstream os;
    // Full double precision: default ostream precision (6 digits) would
    // corrupt large integral fields like n = 2^20.
    os << std::setprecision(15);
    os << "    {\"section\": \"" << section << '"';
    for (const auto& [k, v] : nums) os << ", \"" << k << "\": " << v;
    for (const auto& [k, v] : strs)
      os << ", \"" << k << "\": \"" << v << '"';
    os << '}';
    records_.push_back(os.str());
  }

  void write() {
    if (!enabled_ || written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << records_[i] << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << " (" << records_.size()
              << " records)\n";
  }

 private:
  std::string name_;
  bool enabled_ = false;
  bool written_ = false;
  std::vector<std::string> records_;
};

}  // namespace copath::bench
