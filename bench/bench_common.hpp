// Shared helpers for the benchmark harness. All benches drive the library
// through the copath::Solver facade — no pram::Machine wiring here.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>

#include "copath.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace copath::bench {

inline std::size_t log2z(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << (l + 1)) <= n) ++l;
  return l == 0 ? 1 : l;
}

/// Solver options for the paper's setting: the chosen backend on an EREW
/// machine with the P = n / log2 n budget (processors = 0 resolves to it).
/// Conflict checking is disabled for the large sweeps (the test suite runs
/// the same code fully checked), and so are the result verdict sweeps —
/// no bench reads them, and the BM loops must time the engine alone.
inline SolveOptions paper_options(Backend backend, bool checked = false) {
  SolveOptions opts;
  opts.backend = backend;
  opts.policy = checked ? pram::Policy::EREW : pram::Policy::Unchecked;
  opts.compute_verdicts = false;
  return opts;
}

/// Benches have no recovery story: a failed solve is a harness bug.
inline const SolveResult& require_ok(const SolveResult& res) {
  if (!res.ok) {
    std::cerr << "solve failed: " << res.error << "\n";
    std::exit(1);
  }
  return res;
}

inline const CountResult& require_ok(const CountResult& res) {
  if (!res.ok) {
    std::cerr << "count failed: " << res.error << "\n";
    std::exit(1);
  }
  return res;
}

inline void banner(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace copath::bench
