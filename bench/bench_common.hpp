// Shared helpers for the benchmark harness.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>

#include "copath.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace copath::bench {

inline std::size_t log2z(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << (l + 1)) <= n) ++l;
  return l == 0 ? 1 : l;
}

/// An EREW machine with the paper's processor budget P = n / log2 n.
/// Conflict checking is disabled for the large sweeps (the test suite runs
/// the same code fully checked).
inline pram::Machine paper_machine(std::size_t n,
                                   bool checked = false) {
  return pram::Machine(pram::Machine::Config{
      checked ? pram::Policy::EREW : pram::Policy::Unchecked, 1,
      std::max<std::size_t>(1, n / log2z(n))});
}

inline void banner(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace copath::bench
