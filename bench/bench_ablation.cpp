// E8 (ablation) — the design choices DESIGN.md calls out, all expressed as
// SolveOptions on the Solver facade:
//   A. list-ranking engine inside the pipeline (contraction vs Wyllie),
//   B. processor budget P (the n/log n choice vs more/fewer processors),
//   C. conflict checking (EREW-checked vs unchecked) — wall-clock cost of
//      the safety net, with identical simulated counts.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;
using bench::log2z;

void ranking_ablation() {
  bench::banner("E8a: ablation — ranking engine inside the pipeline",
                "contraction ranking keeps work/n flat (work-optimal); "
                "Wyllie's work/n grows ~log n but its small step constant "
                "wins below ~2^16 (see EXPERIMENTS.md E5 discussion).");
  util::Table t({"engine", "n", "steps", "steps/log2(n)", "work", "work/n"});
  for (const auto engine :
       {par::RankEngine::Contract, par::RankEngine::Wyllie}) {
    SolveOptions opts = bench::paper_options(Backend::Pram);
    opts.pipeline.rank_engine = engine;
    const Solver solver(opts);
    for (const std::size_t logn : {12u, 14u, 16u}) {
      const std::size_t n = std::size_t{1} << logn;
      cograph::RandomCotreeOptions opt;
      opt.seed = logn;
      const auto inst = cograph::random_cotree(n, opt);
      const SolveResult res = solver.solve(Instance::view(inst));
      bench::require_ok(res);
      t.row({util::Table::S(engine == par::RankEngine::Contract
                                ? "contract"
                                : "wyllie"),
             util::Table::I(static_cast<long long>(n)),
             util::Table::I(static_cast<long long>(res.stats.steps)),
             util::Table::F(static_cast<double>(res.stats.steps) /
                            static_cast<double>(logn)),
             util::Table::I(static_cast<long long>(res.stats.work)),
             util::Table::F(static_cast<double>(res.stats.work) /
                            static_cast<double>(n))});
    }
  }
  t.print(std::cout);
}

void processor_budget_ablation() {
  bench::banner(
      "E8b: ablation — processor budget",
      "Brent's principle in action: steps ~ n/P + log n. The paper's "
      "P = n/log n is the knee — fewer processors inflate time linearly, "
      "more processors stop helping (and would break work-optimality).");
  const std::size_t n = 1 << 16;
  const std::size_t logn = 16;
  cograph::RandomCotreeOptions opt;
  opt.seed = 5;
  const auto inst = cograph::random_cotree(n, opt);
  util::Table t({"P", "P as", "steps", "work", "work/n"});
  struct Budget {
    const char* label;
    std::size_t p;
  };
  const Budget budgets[] = {
      {"n/(16 log n)", n / (16 * logn)},
      {"n/(4 log n)", n / (4 * logn)},
      {"n/log n (paper)", n / logn},
      {"4n/log n", 4 * n / logn},
      {"n", n},
  };
  for (const auto& b : budgets) {
    SolveOptions opts = bench::paper_options(Backend::Pram);
    opts.processors = b.p;
    const SolveResult res = Solver(opts).solve(Instance::view(inst));
    bench::require_ok(res);
    t.row({util::Table::I(static_cast<long long>(b.p)),
           util::Table::S(b.label),
           util::Table::I(static_cast<long long>(res.stats.steps)),
           util::Table::I(static_cast<long long>(res.stats.work)),
           util::Table::F(static_cast<double>(res.stats.work) /
                          static_cast<double>(n))});
  }
  t.print(std::cout);
}

void checking_ablation() {
  bench::banner("E8c: ablation — EREW conflict checking",
                "identical simulated counts; checking costs wall time only "
                "(per-cell atomic stamps on every access).");
  const std::size_t n = 1 << 15;
  cograph::RandomCotreeOptions opt;
  opt.seed = 6;
  const auto inst = cograph::random_cotree(n, opt);
  util::Table t({"mode", "steps", "work", "wall_ms"});
  for (const bool checked : {false, true}) {
    const Solver solver(bench::paper_options(Backend::Pram, checked));
    const SolveResult res = solver.solve(Instance::view(inst));
    bench::require_ok(res);
    t.row({util::Table::S(checked ? "EREW-checked" : "unchecked"),
           util::Table::I(static_cast<long long>(res.stats.steps)),
           util::Table::I(static_cast<long long>(res.stats.work)),
           util::Table::F(res.wall_ms)});
  }
  t.print(std::cout);
  std::cout << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  ranking_ablation();
  processor_budget_ablation();
  checking_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
