// E14 — fused batch solving: one submit_batch against N independent
// submits, small instances, duplicate-heavy and all-unique mixes.
//
// Claim (ISSUE 7 acceptance): batch throughput >= 3x independent-submit
// throughput at batch sizes n <= 256 on the duplicate-heavy mix. The
// fused path wins three ways at once — one queue slot and one future for
// the whole batch instead of n of each, one ThreadBudgeter lease instead
// of n acquire/release rounds, and within-batch dedup that collapses
// every duplicate and permuted twin onto one packed solve — so the edge
// is largest exactly where per-request overhead dominates: small
// instances, small-to-medium batches.
//
// Both paths run against their own long-lived Service (same options,
// workers pinned to 4 like E12b) and every repetition generates a fresh
// instance set from a disjoint seed range, so each measurement is a cold
// round: the caches never carry results across reps and the comparison
// isolates batch-vs-independent dispatch, not cache residency.
//
// Modes:
//   --json    write BENCH_batch.json (the perf-trajectory record)
//   --smoke   regression gate: exit 1 if the duplicate-heavy speedup at
//             n = 256 falls below 2.5x — the committed BENCH_batch.json
//             bar (3x) minus headroom. CI runs this in Release.
//
// Full mode adds the wire section: one BatchSolve frame against n
// pipelined single-solve frames over a loopback copathd.
#include <algorithm>
#include <cstring>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace {

using namespace copath;
namespace proto = net::protocol;

bench::JsonReport* g_json = nullptr;

/// Instance size for every batch member: comfortably express-eligible, so
/// the packed sweep (not the routing boundary) is what gets measured.
constexpr std::size_t kVertices = 24;

std::vector<std::string> make_texts(std::size_t unique, unsigned seed) {
  std::vector<std::string> texts;
  texts.reserve(unique);
  for (std::size_t i = 0; i < unique; ++i) {
    cograph::RandomCotreeOptions gopt;
    gopt.seed = seed + static_cast<unsigned>(i);
    texts.push_back(cograph::random_cotree(kVertices, gopt).format());
  }
  return texts;
}

/// Requests for one round: `n` slots over `unique` distinct payloads,
/// round-robin, every slot its own Instance (no shared resolution — a
/// real client repeating a payload constructs it per request too).
std::vector<SolveRequest> make_requests(
    const std::vector<std::string>& texts, std::size_t n) {
  std::vector<SolveRequest> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs.push_back(
        SolveRequest{Instance::text(texts[i % texts.size()]), {}, {}});
  }
  return reqs;
}

double independent_ms(Service& svc, std::vector<SolveRequest> reqs) {
  util::WallTimer timer;
  std::vector<std::future<SolveResult>> futs;
  futs.reserve(reqs.size());
  for (SolveRequest& req : reqs) {
    futs.push_back(svc.submit(std::move(req)));
  }
  for (auto& f : futs) bench::require_ok(f.get());
  return timer.millis();
}

double batch_ms(Service& svc, std::vector<SolveRequest> reqs) {
  const std::size_t n = reqs.size();
  util::WallTimer timer;
  const std::vector<SolveResult> results =
      svc.submit_batch(std::move(reqs)).get();
  const double ms = timer.millis();
  if (results.size() != n) {
    std::cerr << "batch returned " << results.size() << " of " << n << "\n";
    std::exit(1);
  }
  for (const SolveResult& res : results) bench::require_ok(res);
  return ms;
}

struct Mix {
  const char* name;
  /// unique payloads per n batch slots (duplicate-heavy = n / 16).
  std::function<std::size_t(std::size_t)> unique_of;
};

struct GateStats {
  int violations = 0;
};

/// Best-of-`reps` speedup for one (mix, n) cell; every rep draws a fresh
/// seed range so both services stay cold.
struct Cell {
  double indep_ms;
  double batch_ms;
};

Cell measure_cell(Service& indep_svc, Service& batch_svc, const Mix& mix,
                  std::size_t n, int reps, unsigned seed_base) {
  Cell best{1e300, 1e300};
  for (int r = 0; r < reps; ++r) {
    const std::size_t unique =
        std::max<std::size_t>(std::size_t{1}, mix.unique_of(n));
    const auto texts = make_texts(
        unique, seed_base + static_cast<unsigned>(r) * 100000u);
    // Independent first, batch second, every rep: thermal drift across
    // the cell biases against the batch path, never for it.
    best.indep_ms =
        std::min(best.indep_ms, independent_ms(indep_svc,
                                               make_requests(texts, n)));
    best.batch_ms =
        std::min(best.batch_ms, batch_ms(batch_svc,
                                         make_requests(texts, n)));
  }
  return best;
}

void batch_sweep(bool smoke, GateStats& gate) {
  bench::banner(
      smoke ? "E14-smoke: fused batch never regresses past the committed "
              "bar"
            : "E14a: submit_batch vs N independent submits, cold rounds",
      "n requests over 24-vertex instances; duplicate-heavy = n/16 unique "
      "payloads (dedup collapses the rest), all-unique = n distinct. Each "
      "rep is a fresh instance set, so both services run cold. Bar: "
      "duplicate-heavy >= 3x at n <= 256.");
  util::Table table({"mix", "n", "unique", "indep_ms", "batch_ms",
                     "speedup", "batch_rps"});
  const Mix mixes[] = {
      {"duplicate_heavy",
       [](std::size_t n) { return std::max<std::size_t>(1, n / 16); }},
      {"all_unique", [](std::size_t n) { return n; }},
  };
  const std::vector<std::size_t> ns =
      smoke ? std::vector<std::size_t>{256}
            : std::vector<std::size_t>{16, 64, 256, 1024, 4096};
  Service::Options sopts;
  sopts.workers = 4;
  unsigned seed = 52'000'000;
  for (const Mix& mix : mixes) {
    for (const std::size_t n : ns) {
      // Fresh services per cell: the cell's own warmup rep sizes the
      // arenas, and no cache state leaks between mixes.
      Service indep_svc(sopts);
      Service batch_svc(sopts);
      const int reps = n <= 256 ? 9 : (n <= 1024 ? 5 : 3);
      seed += 10'000'000;
      Cell cell = measure_cell(indep_svc, batch_svc, mix, n, reps, seed);
      double speedup = cell.indep_ms / cell.batch_ms;
      const bool gated = smoke && n == 256 &&
                         std::strcmp(mix.name, "duplicate_heavy") == 0;
      if (gated && speedup < 2.5) {
        // Millisecond scales jitter: re-measure once with triple the
        // repetitions before declaring a violation.
        seed += 10'000'000;
        cell = measure_cell(indep_svc, batch_svc, mix, n, 3 * reps, seed);
        speedup = cell.indep_ms / cell.batch_ms;
        if (speedup < 2.5) {
          std::cerr << "SMOKE VIOLATION at " << mix.name << " n=" << n
                    << ": speedup=" << speedup << " (bar 2.5)\n";
          ++gate.violations;
        }
      }
      const std::size_t unique =
          std::max<std::size_t>(std::size_t{1}, mix.unique_of(n));
      const double rps = 1000.0 * static_cast<double>(n) / cell.batch_ms;
      table.row({util::Table::S(mix.name),
                 util::Table::I(static_cast<long long>(n)),
                 util::Table::I(static_cast<long long>(unique)),
                 util::Table::F(cell.indep_ms),
                 util::Table::F(cell.batch_ms), util::Table::F(speedup),
                 util::Table::F(rps)});
      if (g_json != nullptr) {
        g_json->row("batch",
                    {{"n", static_cast<double>(n)},
                     {"unique", static_cast<double>(unique)},
                     {"independent_ms", cell.indep_ms},
                     {"batch_ms", cell.batch_ms},
                     {"speedup", speedup},
                     {"batch_rps", rps}},
                    {{"mix", mix.name}});
      }
    }
  }
  table.print(std::cout);
  std::cout << std::endl;
}

// ------------------------------------------------------------------ wire

/// A daemon on an ephemeral loopback port with its event loop on a
/// background thread. Drained (gracefully) on destruction.
struct Daemon {
  Daemon() {
    net::Server::Options opts;
    opts.port = 0;  // ephemeral
    server = std::make_unique<net::Server>(std::move(opts));
    thread = std::thread([this] { server->run(); });
  }
  ~Daemon() {
    server->request_drain();
    thread.join();
  }
  [[nodiscard]] net::Client connect() const {
    return net::Client("127.0.0.1", server->port());
  }

  std::unique_ptr<net::Server> server;
  std::thread thread;
};

void wire_sweep() {
  bench::banner(
      "E14b: one BatchSolve frame vs n pipelined single frames",
      "Loopback copathd, fresh daemon per cell. Singles are FULLY "
      "pipelined (all frames written before the first response is read), "
      "so the wire win isolates framing + dispatch + per-request "
      "completion, not round trips.");
  util::Table table({"mix", "n", "singles_ms", "batch_frame_ms", "speedup"});
  for (const bool duplicate_heavy : {true, false}) {
    const char* mix = duplicate_heavy ? "duplicate_heavy" : "all_unique";
    for (const std::size_t n : {64u, 256u, 1024u}) {
      const std::size_t unique =
          duplicate_heavy ? std::max<std::size_t>(1, n / 16) : n;
      double singles_best = 1e300;
      double batch_best = 1e300;
      for (int r = 0; r < 5; ++r) {
        const auto texts = make_texts(
            unique, 83'000'000u + static_cast<unsigned>(r) * 100000u +
                        static_cast<unsigned>(n));
        {
          Daemon daemon;
          net::Client cli = daemon.connect();
          util::WallTimer timer;
          for (std::size_t i = 0; i < n; ++i) {
            (void)cli.send_solve_text(texts[i % texts.size()]);
          }
          cli.flush();
          for (std::size_t i = 0; i < n; ++i) {
            const proto::Response res = cli.recv();
            if (res.status != proto::Status::Ok || !res.result.ok) {
              std::cerr << "single solve failed: " << res.error << "\n";
              std::exit(1);
            }
          }
          singles_best = std::min(singles_best, timer.millis());
        }
        {
          Daemon daemon;
          net::Client cli = daemon.connect();
          std::vector<proto::BatchItem> items;
          items.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            items.push_back(
                proto::BatchItem{false, texts[i % texts.size()]});
          }
          util::WallTimer timer;
          const proto::Response res = cli.solve_batch(items);
          const double ms = timer.millis();
          if (res.status != proto::Status::Ok ||
              res.batch.size() != items.size()) {
            std::cerr << "batch frame failed: " << res.error << "\n";
            std::exit(1);
          }
          for (const auto& slot : res.batch) {
            if (slot.status != proto::Status::Ok) {
              std::cerr << "batch slot failed: " << slot.error << "\n";
              std::exit(1);
            }
          }
          batch_best = std::min(batch_best, ms);
        }
      }
      const double speedup = singles_best / batch_best;
      table.row({util::Table::S(mix),
                 util::Table::I(static_cast<long long>(n)),
                 util::Table::F(singles_best), util::Table::F(batch_best),
                 util::Table::F(speedup)});
      if (g_json != nullptr) {
        g_json->row("wire",
                    {{"n", static_cast<double>(n)},
                     {"singles_ms", singles_best},
                     {"batch_frame_ms", batch_best},
                     {"speedup", speedup}},
                    {{"mix", mix}});
      }
    }
  }
  table.print(std::cout);
  std::cout << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  bench::JsonReport json(&argc, argv, "batch");
  g_json = &json;
  GateStats gate;
  batch_sweep(smoke, gate);
  if (!smoke) wire_sweep();
  json.write();
  if (gate.violations > 0) {
    std::cerr << gate.violations << " smoke violation(s)\n";
    return 1;
  }
  std::cout << (smoke ? "smoke OK\n" : "");
  return 0;
}
