// E7 — the PRAM simulator substrate itself (substitution validity,
// DESIGN.md §2): overhead of conflict checking, scaling over worker
// threads, and the cost model's insensitivity to the physical backend.
// Driven through core::probe_scan_substrate, the facade's substrate probe
// (the machine wiring lives in src/).
//
// Note: the host may have a single core; simulated steps/work are identical
// for every worker count by construction — that is the point of the model.
// Run with --json to write BENCH_pram_backend.json.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;

bench::JsonReport* g_json = nullptr;

core::BackendConfig probe_config(std::size_t n, bool checked,
                                 std::size_t workers) {
  core::BackendConfig cfg;
  cfg.policy = checked ? pram::Policy::EREW : pram::Policy::Unchecked;
  cfg.workers = workers;
  cfg.processors = n / 18;
  return cfg;
}

void backend_table() {
  bench::banner(
      "E7: PRAM simulator backend",
      "Simulated steps/work must be identical across workers and checked "
      "vs unchecked modes; wall time varies. (Host may be single-core; the "
      "complexity claims rest on the simulated counts, not wall time.)");
  const std::size_t n = 1 << 18;
  util::Table t({"mode", "workers", "steps", "work", "wall_ms"});
  const auto emit = [&](const char* mode, std::size_t workers,
                        const core::ScanProbeResult& res) {
    t.row({util::Table::S(mode),
           util::Table::I(static_cast<long long>(workers)),
           util::Table::I(static_cast<long long>(res.stats.steps)),
           util::Table::I(static_cast<long long>(res.stats.work)),
           util::Table::F(res.wall_ms)});
    if (g_json != nullptr) {
      g_json->row("backend_table",
                  {{"n", static_cast<double>(n)},
                   {"workers", static_cast<double>(workers)},
                   {"steps", static_cast<double>(res.stats.steps)},
                   {"work", static_cast<double>(res.stats.work)},
                   {"wall_ms", res.wall_ms}},
                  {{"mode", mode}});
    }
  };
  for (const bool checked : {false, true}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      emit(checked ? "EREW-checked" : "unchecked", workers,
           core::probe_scan_substrate(n, probe_config(n, checked, workers)));
    }
  }
  // The exec-layer escape hatch: the same scan on exec::Native (its stats
  // count phases, not simulated cost — the wall-time column is the point).
  for (const std::size_t workers : {1u, 2u}) {
    emit("native", workers, core::probe_scan_native(n, workers));
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void BM_scan_unchecked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::BackendConfig cfg;
  cfg.policy = pram::Policy::Unchecked;
  cfg.processors = n / 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::probe_scan_substrate(n, cfg));
  }
}
BENCHMARK(BM_scan_unchecked)->Range(1 << 14, 1 << 20);

void BM_scan_checked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::BackendConfig cfg;
  cfg.policy = pram::Policy::EREW;
  cfg.processors = n / 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::probe_scan_substrate(n, cfg));
  }
}
BENCHMARK(BM_scan_checked)->Range(1 << 14, 1 << 18);

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json(&argc, argv, "pram_backend");
  g_json = &json;
  backend_table();
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
