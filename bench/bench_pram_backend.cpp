// E7 — the PRAM simulator substrate itself (substitution validity,
// DESIGN.md §2): overhead of conflict checking, scaling over worker
// threads, and the cost model's insensitivity to the physical backend.
//
// Note: the host may have a single core; simulated steps/work are identical
// for every worker count by construction — that is the point of the model.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "par/scan.hpp"

namespace {

using namespace copath;

void backend_table() {
  bench::banner(
      "E7: PRAM simulator backend",
      "Simulated steps/work must be identical across workers and checked "
      "vs unchecked modes; wall time varies. (Host may be single-core; the "
      "complexity claims rest on the simulated counts, not wall time.)");
  const std::size_t n = 1 << 18;
  util::Table t({"mode", "workers", "steps", "work", "wall_ms"});
  for (const bool checked : {false, true}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      pram::Machine m(pram::Machine::Config{
          checked ? pram::Policy::EREW : pram::Policy::Unchecked, workers,
          n / 18});
      pram::Array<std::int64_t> a(m, n, 1);
      util::WallTimer timer;
      par::exclusive_scan(m, a);
      t.row({util::Table::S(checked ? "EREW-checked" : "unchecked"),
             util::Table::I(static_cast<long long>(workers)),
             util::Table::I(static_cast<long long>(m.stats().steps)),
             util::Table::I(static_cast<long long>(m.stats().work)),
             util::Table::F(timer.millis())});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void BM_scan_unchecked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pram::Machine m(
        pram::Machine::Config{pram::Policy::Unchecked, 1, n / 16});
    pram::Array<std::int64_t> a(m, n, 1);
    par::exclusive_scan(m, a);
    benchmark::DoNotOptimize(a.host(n - 1));
  }
}
BENCHMARK(BM_scan_unchecked)->Range(1 << 14, 1 << 20);

void BM_scan_checked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pram::Machine m(pram::Machine::Config{pram::Policy::EREW, 1, n / 16});
    pram::Array<std::int64_t> a(m, n, 1);
    par::exclusive_scan(m, a);
    benchmark::DoNotOptimize(a.host(n - 1));
  }
}
BENCHMARK(BM_scan_checked)->Range(1 << 14, 1 << 18);

}  // namespace

int main(int argc, char** argv) {
  backend_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
