// E12 — the zero-allocation request front-end: text→result and warm-hit
// latency, new front-end vs the PR 4 request path, n = 16 .. 2^16.
//
// Claims (ISSUE 5 acceptance):
//   * cold text→result throughput at n <= 4096 is >= 3x the PR 4 path
//     (recursive-descent parser + registry dispatch + one binarize per
//     verdict sweep), and
//   * warm cache-hit latency is >= 5x better than the PR 4 hit path
//     (string canonical key rebuilt + hashed + compared per request,
//     copy-then-remap materialization).
//
// The PR 4 baseline is reconstructed in-binary from the retained pieces:
// Cotree::parse_reference IS the old parser, Solver::solve IS the old
// dispatch (unchanged), the old key shape (canonical string + ostringstream
// options fingerprint, string-keyed map, copy-then-remap hit) is emulated
// verbatim. Both paths therefore share the same machine, same cache state,
// same instances — the ratio isolates the front-end work this PR removed.
//
// Modes:
//   --json    write BENCH_frontend.json (the perf-trajectory record)
//   --smoke   regression gate: exit 1 if the measured cold speedup falls
//             below 2.7x or the warm-hit speedup below 4.5x at any
//             n in {256, 1024, 4096} — the committed BENCH_frontend.json
//             bars (3x / 5x) minus 10% headroom. CI runs this in Release.
//
// Plain main — no google-benchmark dependency, so the smoke gate builds
// everywhere the library does.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace copath;

#include "legacy_frontend.inc"

bench::JsonReport* g_json = nullptr;

Cotree make_instance(const char* family, std::size_t n, unsigned seed) {
  if (std::strcmp(family, "caterpillar") == 0) return cograph::caterpillar(n);
  cograph::RandomCotreeOptions gopt;
  gopt.seed = seed;
  return cograph::random_cotree(n, gopt);
}

/// Serving-shaped options: the Service default (Adaptive + verdicts).
SolveOptions serving_options() {
  SolveOptions opts;
  opts.backend = Backend::Adaptive;
  return opts;
}

// ----------------------------------------------------------------- keys

/// The old string cache key: canonical string copied per request, options
/// serialized through an ostringstream, both folded into the hash char by
/// char (verbatim from the PR 3/4 result_cache.cpp).
std::uint64_t legacy_hash_string(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(c));
  }
  return h;
}

/// The old full key build: canonical string copied, options serialized,
/// hash folded char by char, plus the flight-key concatenation the old
/// Service built on the miss path.
std::string legacy_flight_key(const cograph::CanonicalForm& form,
                              const SolveOptions& opts) {
  std::string canon_key = form.key;  // the per-request string copy
  const std::string opts_key = service::options_fingerprint(opts);
  const std::uint64_t hash = legacy_hash_string(form.hash, opts_key);
  (void)hash;
  std::string flight = std::move(canon_key);
  flight += '\x1f';
  flight += opts_key;
  return flight;
}

using LegacyStore =
    std::unordered_map<std::string, std::shared_ptr<const SolveResult>>;

// --------------------------------------------------------------- cold path

/// PR 4 cold request, the full service miss anatomy: recursive-descent
/// parse, vector-scratch canonicalization, string key build + probe, the
/// verbatim PR 4 sequential solve + verdict sweeps (one fresh binarize
/// each), canonical-space copy, store. Above the Adaptive floor the old
/// route was not sequential, so the caller skips those sizes for legacy
/// timing fairness (the sweep only claims n <= 4096 anyway).
double legacy_cold_ms(const std::string& text, const SolveOptions& opts,
                      LegacyStore& store, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    const Cotree t = Cotree::parse_reference(text);
    const auto form = legacy::legacy_canonical_form(t);
    const std::string flight = legacy_flight_key(form, opts);
    (void)store.find(flight);  // the miss probe
    const SolveResult res = legacy::legacy_solve(t);
    store[flight] = std::make_shared<const SolveResult>(
        service::to_canonical_space(res, form));
    best = std::min(best, timer.millis());
  }
  return best;
}

/// Large-n legacy cold request: above the Adaptive floor the old route
/// was the same registry dispatch still in the tree, so time that (the
/// parse + canonicalization remain the PR 4 reconstructions).
double legacy_generic_cold_ms(const std::string& text,
                              const SolveOptions& opts,
                              const Solver& solver, LegacyStore& store,
                              int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    const Cotree t = Cotree::parse_reference(text);
    const auto form = legacy::legacy_canonical_form(t);
    const std::string flight = legacy_flight_key(form, opts);
    (void)store.find(flight);
    const SolveResult res =
        bench::require_ok(solver.solve(Instance::view(t)));
    store[flight] = std::make_shared<const SolveResult>(
        service::to_canonical_space(res, form));
    best = std::min(best, timer.millis());
  }
  return best;
}

/// PR 5 cold request, same anatomy through the new front end: iterative
/// SoA parse inside Instance resolution, arena-scratch canonicalization
/// (binary signature emitted in the same walk), borrowed key + memcmp
/// probe, then whatever a Service worker runs — the express-lane inline
/// solve below the Adaptive floor, generic dispatch above it — and the
/// canonical-space store.
double new_cold_ms(const std::string& text, std::size_t n,
                   const SolveOptions& opts, const Solver& solver,
                   service::ResultCache& cache, int reps) {
  const bool express = service::express_eligible(n, opts);
  exec::Arena& arena = exec::Arena::for_this_thread();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    const Instance inst = Instance::text(text);
    const auto& form = inst.canonical();
    const service::CacheKeyRef key = service::make_cache_key(form, opts);
    (void)cache.lookup(key);  // the miss probe
    const SolveResult res =
        express ? service::solve_express(inst, {}, opts, arena)
                : solver.solve(inst);
    bench::require_ok(res);
    cache.insert(key, std::make_shared<const SolveResult>(
                          service::to_canonical_space(res, form)));
    best = std::min(best, timer.millis());
  }
  return best;
}

// ----------------------------------------------------------- warm-hit path

/// PR 4 warm hit: parse (recursive), canonicalize, rebuild the string key,
/// probe a string-keyed map (full string compare), deep-copy the stored
/// result, then remap it in place.
double legacy_warm_ms(const std::string& text, const SolveOptions& opts,
                      const LegacyStore& store, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    const Cotree t = Cotree::parse_reference(text);
    const auto form = legacy::legacy_canonical_form(t);
    const std::string flight = legacy_flight_key(form, opts);
    const auto it = store.find(flight);
    if (it == store.end()) {
      std::cerr << "legacy warm path missed its own store\n";
      std::exit(1);
    }
    SolveResult res = service::from_canonical_space(SolveResult(*it->second),
                                                    form);
    best = std::min(best, timer.millis());
    if (res.cover.paths.empty() && t.vertex_count() > 0) std::exit(1);
  }
  return best;
}

/// PR 5 warm hit: iterative parse, canonicalize (binary signature emitted
/// in the same walk), borrow the key (no copy), memcmp probe of the real
/// ResultCache, fused copy+remap materialization.
double new_warm_ms(const std::string& text, const SolveOptions& opts,
                   service::ResultCache& cache, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    const Cotree t = Cotree::parse(text);
    // What Instance::canonical() computes: signature + permutations, no
    // human-facing algebra key.
    const auto form = canonical_form(t, /*with_algebra_key=*/false);
    const service::CacheKeyRef key = service::make_cache_key(form, opts);
    const auto hit = cache.lookup(key);
    if (hit == nullptr) {
      std::cerr << "new warm path missed its own store\n";
      std::exit(1);
    }
    SolveResult res = service::remapped_from_canonical(*hit, form);
    best = std::min(best, timer.millis());
    if (res.cover.paths.empty() && t.vertex_count() > 0) std::exit(1);
  }
  return best;
}

// ----------------------------------------------------------------- sweeps

struct GateStats {
  int violations = 0;
};

void frontend_sweep(bool smoke, GateStats& gate) {
  bench::banner(
      smoke ? "E12-smoke: front-end never regresses past the committed bars"
            : "E12a: text->result and warm-hit latency, old vs new "
              "front-end",
      "cold = full request (parse + solve + verdicts); warm = cache-hit "
      "request (parse + canonicalize + key + probe + remap). legacy is the "
      "PR 4 path reconstructed in-binary (recursive parser, registry "
      "dispatch, string keys, copy-then-remap). Bars at n <= 4096: cold "
      ">= 3x, warm >= 5x.");
  util::Table table({"family", "n", "cold_legacy_us", "cold_new_us",
                     "cold_x", "warm_legacy_us", "warm_new_us", "warm_x",
                     "cold_rps"});
  const SolveOptions opts = serving_options();
  const Solver legacy_solver(opts);
  const std::vector<std::size_t> ns =
      smoke ? std::vector<std::size_t>{256, 1024, 4096}
            : std::vector<std::size_t>{16, 64, 256, 1024, 4096, 16384,
                                       65536};
  for (const char* family : {"random", "caterpillar"}) {
    for (const std::size_t n : ns) {
      // parse_reference recurses: keep the legacy path inside its 512
      // frames for caterpillar-like shapes by skipping what it cannot
      // even parse (the new parser has no such limit — that asymmetry is
      // PART of this PR, but an unmeasurable baseline is no baseline).
      const Cotree t =
          make_instance(family, n, 12000 + static_cast<unsigned>(n));
      const std::string text = t.format();
      bool legacy_ok = true;
      try {
        (void)Cotree::parse_reference(text);
      } catch (const util::CheckError&) {
        legacy_ok = false;
      }
      if (!legacy_ok) continue;

      const int reps = n <= 256 ? 150 : (n <= 4096 ? 40 : 5);

      // Warm stores, seeded once from the same solve.
      const auto form = canonical_form(t);
      const SolveResult seeded = bench::require_ok(
          legacy_solver.solve(Instance::view(t)));
      const auto canonical = std::make_shared<const SolveResult>(
          service::to_canonical_space(seeded, form));
      LegacyStore legacy_store;
      legacy_store.emplace(legacy_flight_key(form, opts), canonical);
      service::ResultCache cache;
      cache.insert(service::make_cache_key(form, opts), canonical);

      // Cold. Interleave-fair: legacy first, then new (any thermal drift
      // across the cell biases against the new path).
      const double cold_legacy =
          n <= core::CostModel::calibrated().min_native_n
              ? legacy_cold_ms(text, opts, legacy_store, reps)
              : legacy_generic_cold_ms(text, opts, legacy_solver,
                                       legacy_store, reps);
      const double cold_new =
          new_cold_ms(text, n, opts, legacy_solver, cache, reps);

      const double warm_legacy =
          legacy_warm_ms(text, opts, legacy_store, reps);
      const double warm_new = new_warm_ms(text, opts, cache, reps);

      const double cold_x = cold_legacy / cold_new;
      const double warm_x = warm_legacy / warm_new;
      const double rps = 1000.0 / cold_new;
      table.row({util::Table::S(family),
                 util::Table::I(static_cast<long long>(n)),
                 util::Table::F(cold_legacy * 1000.0),
                 util::Table::F(cold_new * 1000.0),
                 util::Table::F(cold_x),
                 util::Table::F(warm_legacy * 1000.0),
                 util::Table::F(warm_new * 1000.0),
                 util::Table::F(warm_x), util::Table::F(rps)});
      if (g_json != nullptr) {
        g_json->row("frontend",
                    {{"n", static_cast<double>(n)},
                     {"cold_legacy_ms", cold_legacy},
                     {"cold_new_ms", cold_new},
                     {"cold_speedup", cold_x},
                     {"warm_legacy_ms", warm_legacy},
                     {"warm_new_ms", warm_new},
                     {"warm_speedup", warm_x},
                     {"cold_rps", rps}},
                    {{"family", family}});
      }
      if (smoke && n <= 4096) {
        // The committed bars minus 10% headroom; re-measure once with
        // more repetitions before declaring a violation (microsecond
        // scales jitter).
        const bool cold_bad = cold_x < 2.7;
        const bool warm_bad = warm_x < 4.5;
        if (cold_bad || warm_bad) {
          const double c2 =
              legacy_cold_ms(text, opts, legacy_store, 3 * reps) /
              new_cold_ms(text, n, opts, legacy_solver, cache, 3 * reps);
          const double w2 =
              legacy_warm_ms(text, opts, legacy_store, 3 * reps) /
              new_warm_ms(text, opts, cache, 3 * reps);
          if (c2 < 2.7 || w2 < 4.5) {
            std::cerr << "SMOKE VIOLATION at " << family << " n=" << n
                      << ": cold_x=" << c2 << " (bar 2.7), warm_x=" << w2
                      << " (bar 4.5)\n";
            ++gate.violations;
          }
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << std::endl;
}

void service_sweep() {
  bench::banner(
      "E12b: the real Service, end to end",
      "Warmup: 256 throwaway instances (same sizes, different seeds) that "
      "size the worker arenas — its fresh_allocs are the one-time growth "
      "cost, reported on its own row. Cold: 256 distinct small instances "
      "submitted through copath::Service (express lane + arena scratch "
      "engaged); its fresh_allocs are now the steady-state cold-request "
      "number, not warm-up growth in disguise. Warm: the same 256 requests "
      "again — every one a cache hit. Request latency includes queueing "
      "and future fulfillment. All counters are per-phase deltas.");
  util::Table table(
      {"n", "phase", "total_ms", "req_per_s", "express", "fresh_allocs"});
  for (const std::size_t n : {256u, 4096u}) {
    Service::Options sopts;
    sopts.workers = 4;
    Service svc(sopts);
    std::vector<std::string> texts;
    std::vector<std::string> warmup_texts;
    texts.reserve(256);
    warmup_texts.reserve(256);
    for (unsigned i = 0; i < 256; ++i) {
      texts.push_back(
          make_instance(i % 2 == 0 ? "random" : "caterpillar", n,
                        777000 + i)
              .format());
      // Disjoint seed range: same shapes and sizes (so the arenas grow to
      // the same high-water mark) but zero cache overlap with the measured
      // cold round.
      warmup_texts.push_back(
          make_instance(i % 2 == 0 ? "random" : "caterpillar", n,
                        888000 + i)
              .format());
    }
    const auto run_round = [&](const std::vector<std::string>& batch)
        -> double {
      util::WallTimer timer;
      std::vector<std::future<SolveResult>> futs;
      futs.reserve(batch.size());
      for (const auto& text : batch) {
        futs.push_back(svc.submit(SolveRequest{Instance::text(text), {}, {}}));
      }
      for (auto& f : futs) bench::require_ok(f.get());
      return timer.millis();
    };
    const double warmup_ms = run_round(warmup_texts);
    const auto warmup_stats = svc.stats();
    const double cold_ms = run_round(texts);
    const auto cold_stats = svc.stats();
    double warm_ms = 1e300;
    for (int r = 0; r < 3; ++r) warm_ms = std::min(warm_ms, run_round(texts));
    const auto warm_stats = svc.stats();
    const auto row = [&](const char* phase, double ms, std::uint64_t express,
                         std::uint64_t fresh) {
      table.row({util::Table::I(static_cast<long long>(n)),
                 util::Table::S(phase), util::Table::F(ms),
                 util::Table::F(1000.0 * 256.0 / ms),
                 util::Table::I(static_cast<long long>(express)),
                 util::Table::I(static_cast<long long>(fresh))});
      if (g_json != nullptr) {
        g_json->row("service",
                    {{"n", static_cast<double>(n)},
                     {"total_ms", ms},
                     {"req_per_s", 1000.0 * 256.0 / ms},
                     {"express_solves", static_cast<double>(express)},
                     {"arena_fresh_allocs", static_cast<double>(fresh)}},
                    {{"phase", phase}});
      }
    };
    row("warmup", warmup_ms, warmup_stats.express_solves,
        warmup_stats.arena_fresh_allocs);
    row("cold", cold_ms,
        cold_stats.express_solves - warmup_stats.express_solves,
        cold_stats.arena_fresh_allocs - warmup_stats.arena_fresh_allocs);
    row("warm", warm_ms, warm_stats.express_solves - cold_stats.express_solves,
        warm_stats.arena_fresh_allocs - cold_stats.arena_fresh_allocs);
  }
  table.print(std::cout);
  std::cout << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  bench::JsonReport json(&argc, argv, "frontend");
  g_json = &json;
  GateStats gate;
  frontend_sweep(smoke, gate);
  if (!smoke) service_sweep();
  json.write();
  if (gate.violations > 0) {
    std::cerr << gate.violations << " smoke violation(s)\n";
    return 1;
  }
  std::cout << (smoke ? "smoke OK\n" : "");
  return 0;
}
