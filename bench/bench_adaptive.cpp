// E11 — Backend::Adaptive: the cost-model dispatch engine against both of
// its routes on identical inputs.
//
// Claim: Adaptive is never (materially) slower than the better of
// {Sequential, Native} at any size — it IS the better engine plus a
// constant-time routing decision — and it beats raw Native wherever the
// sequential sweep wins (which, single-socket, is everywhere the sweep
// fits in memory: the pipeline pays a ~10-20x work constant for its
// parallel structure). The sweep drives n = 2^8 .. 2^20 over the random
// and caterpillar families; DESIGN.md §7 records the crossover points.
//
// Modes:
//   --json    write BENCH_adaptive.json (the perf-trajectory record)
//   --smoke   small-n regression gate: exit 1 if Adaptive is more than
//             10% slower than the better of {Sequential, Native} at any
//             swept size (CI runs this in Release)
//
// Plain main — no google-benchmark dependency, so the smoke gate builds
// everywhere the library does.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace copath;

bench::JsonReport* g_json = nullptr;

SolveOptions engine_options(Backend b) {
  SolveOptions opts;
  opts.backend = b;
  opts.workers = b == Backend::Sequential ? 1 : 0;  // 0 = hardware
  opts.compute_verdicts = false;
  return opts;
}

Cotree make_instance(const char* family, std::size_t n, unsigned seed) {
  if (std::strcmp(family, "caterpillar") == 0) return cograph::caterpillar(n);
  cograph::RandomCotreeOptions gopt;
  gopt.seed = seed;
  return cograph::random_cotree(n, gopt);
}

struct Sample {
  double wall_ms = 0.0;
  Backend routed = Backend::Sequential;
};

/// Best-of-reps engine time (res.wall_ms times the backend run alone).
Sample time_solve(const Cotree& t, Backend b, int reps) {
  const Solver solver(engine_options(b));
  Sample best;
  best.wall_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto res = bench::require_ok(solver.solve(Instance::view(t)));
    if (res.wall_ms < best.wall_ms) {
      best.wall_ms = res.wall_ms;
      best.routed = res.routed;
    }
  }
  return best;
}

/// One (family, n) cell across the three engines. Every engine's timing
/// block is preceded by one untimed sequential solve so all three start
/// from the same cache state (without it, whichever engine runs after
/// Native inherits a trashed LLC and reads ~1.3x slower — an artifact,
/// not a cost). Returns the Adaptive / best-of-{Seq, Native} ratio for
/// the smoke gate.
double sweep_cell(util::Table& table, const char* family, std::size_t n,
                  int reps) {
  const Cotree t = make_instance(family, n, 11000 + static_cast<unsigned>(n));
  const Solver warm_solver(engine_options(Backend::Sequential));
  const auto timed = [&](Backend b) {
    (void)bench::require_ok(warm_solver.solve(Instance::view(t)));
    return time_solve(t, b, reps);
  };
  // Adaptive is measured first: clock drift (thermal throttle, VM steal)
  // over the cell then works *against* it, so the vs_best ratio is
  // conservative.
  const Sample ada = timed(Backend::Adaptive);
  const Sample seq = timed(Backend::Sequential);
  const Sample nat = timed(Backend::Native);
  const double best = std::min(seq.wall_ms, nat.wall_ms);
  const double ratio = ada.wall_ms / best;
  const auto row = [&](const char* engine, const Sample& s,
                       const char* routed) {
    table.row({util::Table::S(family),
               util::Table::I(static_cast<long long>(n)),
               util::Table::S(engine), util::Table::F(s.wall_ms),
               util::Table::F(best / s.wall_ms), util::Table::S(routed)});
    if (g_json != nullptr) {
      g_json->row("solve",
                  {{"n", static_cast<double>(n)},
                   {"wall_ms", s.wall_ms},
                   {"vs_best", s.wall_ms / best}},
                  {{"engine", engine},
                   {"family", family},
                   {"routed", routed}});
    }
  };
  row("sequential", seq, "sequential");
  row("native", nat, "native");
  row("adaptive", ada, core::to_string(ada.routed));
  return ratio;
}

int solve_sweep(bool smoke) {
  bench::banner(
      smoke ? "E11-smoke: Adaptive never loses at small n"
            : "E11a: Adaptive vs its routes, n = 2^8 .. 2^20",
      "Identical instances through Backend::Sequential, Backend::Native "
      "(hardware workers) and Backend::Adaptive. vs_best is the engine's "
      "time over the better of the two fixed engines; Adaptive's bar is "
      "<= 1.1 at every size.");
  util::Table table({"family", "n", "engine", "wall_ms", "best_speedup",
                     "routed"});
  const std::vector<std::size_t> lgs =
      smoke ? std::vector<std::size_t>{8, 9, 10, 11, 12}
            : std::vector<std::size_t>{8, 10, 12, 14, 16, 18, 20};
  int violations = 0;
  for (const char* family : {"random", "caterpillar"}) {
    for (const std::size_t lg : lgs) {
      const std::size_t n = std::size_t{1} << lg;
      const int reps = n <= (1u << 12) ? 15 : (n <= (1u << 16) ? 5 : 2);
      const double ratio = sweep_cell(table, family, n, reps);
      // 10% relative headroom plus a 50us absolute floor on the retry:
      // at microsecond scales scheduler jitter exceeds any real routing
      // overhead (the decision itself is two multiplies), so a first-pass
      // miss re-measures with more repetitions before failing the gate.
      if (smoke && ratio > 1.10) {
        const Cotree t =
            make_instance(family, n, 11000 + static_cast<unsigned>(n));
        const double best =
            std::min(time_solve(t, Backend::Sequential, 9).wall_ms,
                     time_solve(t, Backend::Native, 9).wall_ms);
        const double ada = time_solve(t, Backend::Adaptive, 9).wall_ms;
        if (ada > best * 1.10 + 0.05) {
          std::cerr << "SMOKE VIOLATION: adaptive " << ada << " ms > 1.1x "
                    << best << " ms (best fixed engine) at " << family
                    << " n=" << n << "\n";
          ++violations;
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << std::endl;
  return violations;
}

void batch_table() {
  bench::banner(
      "E11b: solve_batch throughput at the paper's serving size",
      "64 instances of n = 4096 through Solver::solve_batch. The "
      "acceptance bar: Adaptive >= 5x Native instances/second (the cost "
      "model routes a pressured batch to the sequential sweep).");
  std::vector<Cotree> keep;
  keep.reserve(64);
  for (unsigned i = 0; i < 64; ++i) {
    cograph::RandomCotreeOptions gopt;
    gopt.seed = 555000 + i;
    keep.push_back(cograph::random_cotree(4096, gopt));
  }
  std::vector<SolveRequest> reqs(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    reqs[i].instance = Instance::view(keep[i]);
  }
  util::Table t({"engine", "total_ms", "inst_per_s"});
  for (const Backend b :
       {Backend::Sequential, Backend::Native, Backend::Adaptive}) {
    Solver solver(engine_options(b));
    double ms = 1e300;  // best of three rounds (round 1 warms pools/arenas)
    for (int round = 0; round < 3; ++round) {
      util::WallTimer timer;
      const auto results = solver.solve_batch(reqs);
      ms = std::min(ms, timer.millis());
      for (const auto& r : results) bench::require_ok(r);
    }
    const double ips = 1000.0 * static_cast<double>(reqs.size()) / ms;
    t.row({util::Table::S(core::to_string(b)), util::Table::F(ms),
           util::Table::F(ips)});
    if (g_json != nullptr) {
      g_json->row("solve_batch",
                  {{"batch", static_cast<double>(reqs.size())},
                   {"n", 4096.0},
                   {"total_ms", ms},
                   {"inst_per_s", ips}},
                  {{"engine", core::to_string(b)}});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void crossover_table() {
  bench::banner(
      "E11c: cost-model crossover map",
      "Worker counts where the calibrated model predicts the native "
      "pipeline overtakes the sequential sweep (the routing surface; "
      "measured slopes, DESIGN.md §7).");
  const auto& model = core::CostModel::calibrated();
  util::Table t({"n", "crossover_workers"});
  for (const std::size_t lg : {14u, 16u, 18u, 20u}) {
    const std::size_t n = std::size_t{1} << lg;
    std::size_t cross = 0;
    for (std::size_t w = 1; w <= 4096; ++w) {
      if (model.choose(n, n / 2, w) == Backend::Native) {
        cross = w;
        break;
      }
    }
    t.row({util::Table::I(static_cast<long long>(n)),
           cross == 0 ? util::Table::S("> 4096")
                      : util::Table::I(static_cast<long long>(cross))});
    if (g_json != nullptr) {
      g_json->row("crossover",
                  {{"n", static_cast<double>(n)},
                   {"workers", static_cast<double>(cross)}});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  bench::JsonReport json(&argc, argv, "adaptive");
  g_json = &json;
  const int violations = solve_sweep(smoke);
  if (!smoke) {
    batch_table();
    crossover_table();
  }
  json.write();
  if (violations > 0) {
    std::cerr << violations << " smoke violation(s)\n";
    return 1;
  }
  std::cout << (smoke ? "smoke OK\n" : "");
  return 0;
}
