// E2 — Lemma 2.3: the sequential algorithm runs in O(n).
//
// Expected shape: ns/vertex roughly flat as n grows (linear time), across
// cotree shapes (random, skewed, clique, caterpillar). Driven through the
// Solver facade; SolveResult::wall_ms times the backend run alone.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;

cograph::Cotree make_instance(const std::string& family, std::size_t n,
                              std::uint64_t seed) {
  if (family == "clique") return cograph::clique(n);
  if (family == "caterpillar") return cograph::caterpillar(n);
  cograph::RandomCotreeOptions opt;
  opt.seed = seed;
  if (family == "skewed") opt.skew = 0.8;
  return cograph::random_cotree(n, opt);
}

void sequential_table() {
  bench::banner("E2: Lemma 2.3 — sequential O(n) minimum path cover",
                "paper: linear time. Expect ns/vertex flat in n for every "
                "family.");
  const Solver solver(bench::paper_options(Backend::Sequential));
  util::Table t({"family", "n", "paths", "total_ms", "ns/vertex"});
  for (const char* family :
       {"random", "skewed", "clique", "caterpillar"}) {
    for (const std::size_t logn : {12u, 14u, 16u, 18u, 20u}) {
      const std::size_t n = std::size_t{1} << logn;
      const auto inst = make_instance(family, n, logn);
      const SolveResult res = solver.solve(Instance::view(inst));
      bench::require_ok(res);
      t.row({util::Table::S(family),
             util::Table::I(static_cast<long long>(n)),
             util::Table::I(static_cast<long long>(res.cover.size())),
             util::Table::F(res.wall_ms),
             util::Table::F(res.wall_ms * 1e6 / static_cast<double>(n))});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void BM_sequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cograph::RandomCotreeOptions opt;
  opt.seed = 42;
  const auto inst = cograph::random_cotree(n, opt);
  const Solver solver(bench::paper_options(Backend::Sequential));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(Instance::view(inst)));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_sequential)->Range(1 << 12, 1 << 19)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  sequential_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
