// E15 — the persistent result cache: restart latency cold vs disk-warm vs
// RAM-warm, and two service instances sharing one cache directory.
//
// Claim (ISSUE 8 acceptance): a disk-warm restart — a fresh Service over
// a cache directory populated by a previous run — answers the same
// workload >= 3x faster than a cold run at n = 1024 instances. The
// workload solves on Backend::Parallel, the paper's EREW machine: the L2
// hit path replaces the whole simulated pipeline with an mmap probe (one
// memcmp against the checksummed record) plus a flat record decode and an
// O(n) permutation replay, so the edge scales with backend cost — and the
// hit path never dispatches a backend, so the warm side is the same for
// any engine — and survives the process boundary that empties the L1.
//
// Three tiers per cell, same workload, fresh instances per rep:
//   cold       fresh Service, fresh empty cache dir (solves + writes)
//   ram_warm   the SAME service re-submitting: striped-LRU L1 hits
//   disk_warm  a NEW service over the populated dir: L2 hits, L1 cold
// RAM-warm bounds disk-warm from below (no decode, no mmap); the gap
// between them is the price of persistence, reported not gated.
//
// The sharing section runs writer and reader Services concurrently over
// one directory (two PersistCache instances — flock is per open file
// description, so the real cross-process lock protocol is exercised):
// the reader serves the writer's results from the shared files without
// ever solving.
//
// Modes:
//   --json    write BENCH_cache.json (the perf-trajectory record)
//   --smoke   regression gate: exit 1 if disk-warm speedup at n = 1024
//             falls below 3x (the committed bar). CI runs this in
//             Release.
#include <stdlib.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "copath.hpp"

namespace {

using namespace copath;

bench::JsonReport* g_json = nullptr;

/// Instance size: large enough that a solve visibly out-costs an mmap
/// probe + record decode, small enough that a 4096-instance cold round
/// stays in bench-smoke time.
constexpr std::size_t kVertices = 96;

struct TempDir {
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "copath_bench_l2_XXXXXX")
                           .string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::cerr << "mkdtemp failed\n";
      std::exit(1);
    }
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::vector<Cotree> make_trees(std::size_t n, unsigned seed) {
  std::vector<Cotree> trees;
  trees.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cograph::RandomCotreeOptions gopt;
    gopt.seed = seed + static_cast<unsigned>(i);
    trees.push_back(cograph::random_cotree(kVertices, gopt));
  }
  return trees;
}

Service::Options service_options(const std::string& cache_dir) {
  Service::Options sopts;
  sopts.workers = 4;
  sopts.persist.dir = cache_dir;
  // The paper's EREW machine (Theorem 5.3, P = n/log2 n): the backend a
  // result cache exists for. The hit path never dispatches a backend, so
  // warm numbers are backend-independent; cold pays the full simulation.
  sopts.solve.backend = Backend::Parallel;
  return sopts;
}

/// Submits the whole workload and waits it out; total wall ms.
double run_all(Service& svc, const std::vector<Cotree>& trees) {
  util::WallTimer timer;
  std::vector<std::future<SolveResult>> futs;
  futs.reserve(trees.size());
  for (const Cotree& t : trees) {
    futs.push_back(svc.submit(SolveRequest{Instance::view(t), {}, {}}));
  }
  for (auto& f : futs) bench::require_ok(f.get());
  return timer.millis();
}

struct Cell {
  double cold_ms = 1e300;
  double ram_ms = 1e300;
  double disk_ms = 1e300;
};

Cell measure_cell(std::size_t n, int reps, unsigned seed_base) {
  Cell best;
  for (int r = 0; r < reps; ++r) {
    const auto trees =
        make_trees(n, seed_base + static_cast<unsigned>(r) * 1000000u);
    TempDir dir;
    {
      Service svc(service_options(dir.path));
      best.cold_ms = std::min(best.cold_ms, run_all(svc, trees));
      best.ram_ms = std::min(best.ram_ms, run_all(svc, trees));
      if (svc.stats().persist.appends < n) {
        std::cerr << "cold round wrote " << svc.stats().persist.appends
                  << " of " << n << " records\n";
        std::exit(1);
      }
    }  // restart: the populated directory is all that survives
    {
      Service svc(service_options(dir.path));
      best.disk_ms = std::min(best.disk_ms, run_all(svc, trees));
      if (svc.stats().persist.hits < n) {
        std::cerr << "disk-warm round hit " << svc.stats().persist.hits
                  << " of " << n << " records\n";
        std::exit(1);
      }
    }
  }
  return best;
}

int restart_sweep(bool smoke) {
  bench::banner(
      smoke ? "E15-smoke: disk-warm restart never regresses past the bar"
            : "E15a: restart latency — cold vs disk-warm vs RAM-warm",
      "n 96-vertex instances on the paper's EREW machine (Parallel) "
      "through a Service with --cache-dir set. "
      "cold = empty dir (solve + write-through); ram_warm = same service "
      "again (L1 hits); disk_warm = FRESH service over the populated dir "
      "(L2 hits, L1 cold). Bar: disk_warm >= 3x cold at n = 1024.");
  util::Table table({"n", "cold_ms", "disk_warm_ms", "ram_warm_ms",
                     "disk_speedup", "ram_speedup"});
  int violations = 0;
  const std::vector<std::size_t> ns =
      smoke ? std::vector<std::size_t>{1024}
            : std::vector<std::size_t>{256, 1024, 4096};
  unsigned seed = 15'000'000;
  for (const std::size_t n : ns) {
    const int reps = n <= 1024 ? 5 : 3;
    seed += 10'000'000;
    Cell cell = measure_cell(n, reps, seed);
    double disk_speedup = cell.cold_ms / cell.disk_ms;
    if (smoke && n == 1024 && disk_speedup < 3.0) {
      // Millisecond scales jitter: re-measure once with triple the
      // repetitions before declaring a violation.
      seed += 10'000'000;
      cell = measure_cell(n, 3 * reps, seed);
      disk_speedup = cell.cold_ms / cell.disk_ms;
      if (disk_speedup < 3.0) {
        std::cerr << "SMOKE VIOLATION at n=" << n
                  << ": disk_speedup=" << disk_speedup << " (bar 3.0)\n";
        ++violations;
      }
    }
    const double ram_speedup = cell.cold_ms / cell.ram_ms;
    table.row({util::Table::I(static_cast<long long>(n)),
               util::Table::F(cell.cold_ms), util::Table::F(cell.disk_ms),
               util::Table::F(cell.ram_ms), util::Table::F(disk_speedup),
               util::Table::F(ram_speedup)});
    if (g_json != nullptr) {
      g_json->row("restart", {{"n", static_cast<double>(n)},
                              {"cold_ms", cell.cold_ms},
                              {"disk_warm_ms", cell.disk_ms},
                              {"ram_warm_ms", cell.ram_ms},
                              {"disk_speedup", disk_speedup},
                              {"ram_speedup", ram_speedup}});
    }
  }
  table.print(std::cout);
  std::cout << std::endl;
  return violations;
}

void sharing_sweep() {
  bench::banner(
      "E15b: two live services, one cache directory",
      "The writer solves the workload cold (write-through under the file "
      "lock); the reader — alive the whole time, its own L1 — then serves "
      "the same workload from the shared files. reader_hits counts L2 "
      "serves; a miss would mean a re-solve.");
  util::Table table(
      {"n", "writer_ms", "reader_ms", "speedup", "reader_l2_hits"});
  unsigned seed = 95'000'000;
  for (const std::size_t n : {256u, 1024u}) {
    seed += 10'000'000;
    double writer_best = 1e300;
    double reader_best = 1e300;
    std::uint64_t reader_hits = 0;
    for (int r = 0; r < 5; ++r) {
      const auto trees =
          make_trees(n, seed + static_cast<unsigned>(r) * 1000000u);
      TempDir dir;
      Service writer(service_options(dir.path));
      Service reader(service_options(dir.path));
      writer_best = std::min(writer_best, run_all(writer, trees));
      const double reader_ms = run_all(reader, trees);
      reader_best = std::min(reader_best, reader_ms);
      reader_hits = reader.stats().persist.hits;
      if (reader_hits < n) {
        std::cerr << "reader hit " << reader_hits << " of " << n << "\n";
        std::exit(1);
      }
    }
    table.row({util::Table::I(static_cast<long long>(n)),
               util::Table::F(writer_best), util::Table::F(reader_best),
               util::Table::F(writer_best / reader_best),
               util::Table::I(static_cast<long long>(reader_hits))});
    if (g_json != nullptr) {
      g_json->row("sharing",
                  {{"n", static_cast<double>(n)},
                   {"writer_ms", writer_best},
                   {"reader_ms", reader_best},
                   {"speedup", writer_best / reader_best},
                   {"reader_l2_hits", static_cast<double>(reader_hits)}});
    }
  }
  table.print(std::cout);
  std::cout << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  bench::JsonReport json(&argc, argv, "cache");
  g_json = &json;
  const int violations = restart_sweep(smoke);
  if (!smoke) sharing_sweep();
  json.write();
  if (violations > 0) {
    std::cerr << violations << " smoke violation(s)\n";
    return 1;
  }
  std::cout << (smoke ? "smoke OK\n" : "");
  return 0;
}
