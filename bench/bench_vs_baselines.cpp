// E5 — the separation the paper claims over prior art:
//   naive level-synchronous parallelization: Θ(height)   (O(n) worst case)
//   Lin et al. 1994 profile (pointer-jump ranking): O(log² n) time,
//                                                   O(n log n) work
//   this paper (contraction ranking):               O(log n), O(n)
//
// All three run through the Solver facade: Backend::NaiveParallel, and
// Backend::Pram with the Wyllie vs Contract rank engines.
//
// Expected shape: on deep cotrees the step counts order as
// optimal << lin94-profile << naive, with the gaps widening in n.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;
using bench::log2z;

Solver lin94_solver() {
  SolveOptions opts = bench::paper_options(Backend::Pram);
  opts.pipeline.rank_engine = par::RankEngine::Wyllie;
  return Solver(opts);
}

void comparison_table() {
  bench::banner(
      "E5: optimal pipeline vs naive and Lin94-profile baselines",
      "paper: naive is Θ(n)-time on deep cotrees, Lin et al. '94 reporting "
      "is O(log² n) time / O(n log n) work, Theorem 5.3 is O(log n) / "
      "O(n). Expect: naive/optimal step ratio growing ~linearly (crossover "
      "near 2^14 on this host), lin94 work/n climbing with log n while "
      "optimal work/n stays flat. (At these sizes lin94's 2·log² n step "
      "count is still below the contraction ranker's c·log n — the time "
      "separation is asymptotic; see EXPERIMENTS.md.)");
  const Solver naive(bench::paper_options(Backend::NaiveParallel));
  const Solver lin94 = lin94_solver();
  const Solver optimal(bench::paper_options(Backend::Pram));
  util::Table t({"family", "n", "naive_steps", "lin94_steps",
                 "optimal_steps", "naive/optimal", "lin94/optimal"});
  for (const char* family : {"caterpillar", "random"}) {
    for (const std::size_t logn : {10u, 12u, 14u, 16u}) {
      const std::size_t n = std::size_t{1} << logn;
      cograph::Cotree inst;
      if (std::string(family) == "caterpillar") {
        inst = cograph::caterpillar(n);
      } else {
        cograph::RandomCotreeOptions opt;
        opt.seed = logn * 3;
        inst = cograph::random_cotree(n, opt);
      }
      const SolveResult r_naive =
          bench::require_ok(naive.solve(Instance::view(inst)));
      const SolveResult r_lin =
          bench::require_ok(lin94.solve(Instance::view(inst)));
      const SolveResult r_opt =
          bench::require_ok(optimal.solve(Instance::view(inst)));
      const auto ns = static_cast<double>(r_naive.stats.steps);
      const auto ls = static_cast<double>(r_lin.stats.steps);
      const auto os = static_cast<double>(r_opt.stats.steps);
      t.row({util::Table::S(family),
             util::Table::I(static_cast<long long>(n)),
             util::Table::I(static_cast<long long>(r_naive.stats.steps)),
             util::Table::I(static_cast<long long>(r_lin.stats.steps)),
             util::Table::I(static_cast<long long>(r_opt.stats.steps)),
             util::Table::F(ns / os), util::Table::F(ls / os)});
    }
  }
  t.print(std::cout);

  std::cout << "\nWork comparison (lin94 pays Θ(n log n) ranking work):\n";
  util::Table t2({"n", "lin94_work/n", "optimal_work/n"});
  for (const std::size_t logn : {12u, 14u, 16u}) {
    const std::size_t n = std::size_t{1} << logn;
    cograph::RandomCotreeOptions opt;
    opt.seed = logn;
    const auto inst = cograph::random_cotree(n, opt);
    const SolveResult r_lin =
        bench::require_ok(lin94.solve(Instance::view(inst)));
    const SolveResult r_opt =
        bench::require_ok(optimal.solve(Instance::view(inst)));
    t2.row({util::Table::I(static_cast<long long>(n)),
            util::Table::F(static_cast<double>(r_lin.stats.work) /
                           static_cast<double>(n)),
            util::Table::F(static_cast<double>(r_opt.stats.work) /
                           static_cast<double>(n))});
  }
  t2.print(std::cout);
  std::cout << std::endl;
}

void BM_naive_deep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = cograph::caterpillar(n);
  const Solver solver(bench::paper_options(Backend::NaiveParallel));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(Instance::view(inst)));
  }
}
BENCHMARK(BM_naive_deep)->Range(1 << 10, 1 << 14);

void BM_optimal_deep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = cograph::caterpillar(n);
  const Solver solver(bench::paper_options(Backend::Pram));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(Instance::view(inst)));
  }
}
BENCHMARK(BM_optimal_deep)->Range(1 << 10, 1 << 14);

}  // namespace

int main(int argc, char** argv) {
  comparison_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
