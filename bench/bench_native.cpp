// E9 — the exec-layer split: Backend::Native (direct memory, no
// simulation) against the PRAM simulator backends on identical inputs.
//
// The acceptance claim for the exec refactor: at n >= 2^16 the Native
// engine beats the EREW-checked simulator by >= 3x wall time while
// producing the identical cover (the differential suite in
// tests/exec_test.cpp enforces equality; this bench measures the gap).
// Run with --json to write BENCH_native.json for the perf trajectory.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;

bench::JsonReport* g_json = nullptr;

SolveOptions native_options(std::size_t workers = 1) {
  SolveOptions opts;
  opts.backend = Backend::Native;
  opts.workers = workers;
  opts.compute_verdicts = false;
  return opts;
}

double time_solve(const Cotree& t, const SolveOptions& opts) {
  const Solver solver(opts);
  const auto res = bench::require_ok(solver.solve(Instance::view(t)));
  return res.wall_ms;
}

void substrate_table() {
  bench::banner(
      "E9a: scan substrate — simulator vs native",
      "The same work-optimal exclusive scan; the simulator pays conflict "
      "stamps (checked), write buffering and step barriers (both), the "
      "native executor none of it.");
  util::Table t({"n", "engine", "wall_ms", "native_speedup"});
  for (const std::size_t lg : {16u, 18u, 20u}) {
    const std::size_t n = std::size_t{1} << lg;
    core::BackendConfig cfg;
    cfg.processors = n / bench::log2z(n);
    cfg.policy = pram::Policy::EREW;
    const auto checked = core::probe_scan_substrate(n, cfg);
    cfg.policy = pram::Policy::Unchecked;
    const auto unchecked = core::probe_scan_substrate(n, cfg);
    const auto native = core::probe_scan_native(n, 1);
    const auto row = [&](const char* engine, double ms) {
      t.row({util::Table::I(static_cast<long long>(n)),
             util::Table::S(engine), util::Table::F(ms),
             util::Table::F(ms / native.wall_ms)});
      if (g_json != nullptr) {
        g_json->row("scan_substrate",
                    {{"n", static_cast<double>(n)},
                     {"wall_ms", ms},
                     {"native_speedup", ms / native.wall_ms}},
                    {{"engine", engine}});
      }
    };
    row("pram-erew-checked", checked.wall_ms);
    row("pram-unchecked", unchecked.wall_ms);
    row("native", native.wall_ms);
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void solve_table() {
  bench::banner(
      "E9b: full pipeline — Backend::Native vs Backend::Pram",
      "End-to-end minimum path cover (Theorem 5.3 stages) on identical "
      "instances. Acceptance bar: native >= 3x over the checked simulator "
      "at n >= 2^16.");
  util::Table t(
      {"family", "n", "engine", "wall_ms", "native_speedup"});
  for (const std::size_t lg : {16u, 17u}) {
    const std::size_t n = std::size_t{1} << lg;
    cograph::RandomCotreeOptions gopt;
    gopt.seed = 20260726 + lg;
    const std::vector<std::pair<const char*, Cotree>> instances = {
        {"random", cograph::random_cotree(n, gopt)},
        {"caterpillar", cograph::caterpillar(n)},
    };
    for (const auto& [family, tree] : instances) {
      const double checked_ms =
          time_solve(tree, bench::paper_options(Backend::Pram, true));
      const double unchecked_ms =
          time_solve(tree, bench::paper_options(Backend::Pram, false));
      const double native_ms = time_solve(tree, native_options());
      const auto row = [&](const char* engine, double ms) {
        t.row({util::Table::S(family),
               util::Table::I(static_cast<long long>(n)),
               util::Table::S(engine), util::Table::F(ms),
               util::Table::F(ms / native_ms)});
        if (g_json != nullptr) {
          g_json->row("solve",
                      {{"n", static_cast<double>(n)},
                       {"wall_ms", ms},
                       {"native_speedup", ms / native_ms}},
                      {{"engine", engine}, {"family", family}});
        }
      };
      row("pram-erew-checked", checked_ms);
      row("pram-unchecked", unchecked_ms);
      row("native", native_ms);
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void batch_table() {
  bench::banner(
      "E9c: solve_batch throughput — native vs simulator engines",
      "64 instances of n = 4096 through Solver::solve_batch (shared pool, "
      "per-request thread budget). Instances/second is the service-level "
      "number the exec split buys.");
  std::vector<Cotree> keep;
  keep.reserve(64);
  for (unsigned i = 0; i < 64; ++i) {
    cograph::RandomCotreeOptions gopt;
    gopt.seed = 555000 + i;
    keep.push_back(cograph::random_cotree(4096, gopt));
  }
  std::vector<SolveRequest> reqs(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    reqs[i].instance = Instance::view(keep[i]);
  }
  util::Table t({"engine", "total_ms", "inst_per_s"});
  for (const Backend b :
       {Backend::Pram, Backend::Sequential, Backend::Native}) {
    SolveOptions opts =
        b == Backend::Native ? native_options(0) : bench::paper_options(b);
    Solver solver(opts);
    util::WallTimer timer;
    const auto results = solver.solve_batch(reqs);
    const double ms = timer.millis();
    for (const auto& r : results) bench::require_ok(r);
    const double ips = 1000.0 * static_cast<double>(reqs.size()) / ms;
    t.row({util::Table::S(core::to_string(b)), util::Table::F(ms),
           util::Table::F(ips)});
    if (g_json != nullptr) {
      g_json->row("solve_batch",
                  {{"batch", static_cast<double>(reqs.size())},
                   {"n", 4096.0},
                   {"total_ms", ms},
                   {"inst_per_s", ips}},
                  {{"engine", core::to_string(b)}});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void BM_solve_native(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cograph::RandomCotreeOptions gopt;
  gopt.seed = 99;
  const Cotree t = cograph::random_cotree(n, gopt);
  const Solver solver(native_options());
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(Instance::view(t)));
  }
}
BENCHMARK(BM_solve_native)->Range(1 << 12, 1 << 16);

void BM_solve_pram_unchecked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cograph::RandomCotreeOptions gopt;
  gopt.seed = 99;
  const Cotree t = cograph::random_cotree(n, gopt);
  const Solver solver(bench::paper_options(Backend::Pram, false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(Instance::view(t)));
  }
}
BENCHMARK(BM_solve_pram_unchecked)->Range(1 << 12, 1 << 14);

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json(&argc, argv, "native");
  g_json = &json;
  substrate_table();
  solve_table();
  batch_table();
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
