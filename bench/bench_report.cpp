// E4 — Theorem 5.3 (the main result): reporting all paths of a minimum
// path cover in O(log n) time and O(n) work on the EREW PRAM, through the
// Solver facade (Backend::Pram with trace collection).
//
// Expected shape: pipeline steps/log2(n) flat; work/n flat; work within a
// constant factor of the sequential algorithm's time (work-optimality).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;
using bench::log2z;

void report_table() {
  bench::banner(
      "E4: Theorem 5.3 — parallel minimum path cover (the main result)",
      "paper: O(log n) time, n/log n EREW processors, O(n) work. Expect "
      "steps/log2(n) flat and work/n flat across families and sizes.");
  SolveOptions opts = bench::paper_options(Backend::Pram);
  opts.collect_trace = true;
  const Solver solver(opts);
  util::Table t({"family", "n", "paths", "steps", "steps/log2(n)", "work",
                 "work/n", "brackets", "dummies", "repair_rounds"});
  for (const char* family : {"random", "skewed", "deep"}) {
    for (const std::size_t logn : {12u, 14u, 16u, 18u}) {
      const std::size_t n = std::size_t{1} << logn;
      cograph::Cotree inst;
      if (std::string(family) == "deep") {
        inst = cograph::caterpillar(n);
      } else {
        cograph::RandomCotreeOptions opt;
        opt.seed = 100 + logn;
        opt.skew = std::string(family) == "skewed" ? 0.8 : 0.0;
        inst = cograph::random_cotree(n, opt);
      }
      const SolveResult res = solver.solve(Instance::view(inst));
      bench::require_ok(res);
      t.row({util::Table::S(family),
             util::Table::I(static_cast<long long>(n)),
             util::Table::I(static_cast<long long>(res.cover.size())),
             util::Table::I(static_cast<long long>(res.stats.steps)),
             util::Table::F(static_cast<double>(res.stats.steps) /
                            static_cast<double>(logn)),
             util::Table::I(static_cast<long long>(res.stats.work)),
             util::Table::F(static_cast<double>(res.stats.work) /
                            static_cast<double>(n)),
             util::Table::I(static_cast<long long>(res.trace.bracket_length)),
             util::Table::I(static_cast<long long>(res.trace.dummy_count)),
             util::Table::I(
                 static_cast<long long>(res.trace.repair_rounds))});
    }
  }
  t.print(std::cout);

  // Stage breakdown at the largest size: where the log-factor constants
  // live (informs the EXPERIMENTS.md discussion).
  {
    const std::size_t n = 1 << 18;
    cograph::RandomCotreeOptions opt;
    opt.seed = 3;
    const auto inst = cograph::random_cotree(n, opt);
    const SolveResult res = solver.solve(Instance::view(inst));
    bench::require_ok(res);
    std::cout << "\nPer-stage breakdown (random, n = " << n << "):\n";
    util::Table ts({"stage", "steps", "share_%", "work", "work/n"});
    const auto total_steps = static_cast<double>(res.stats.steps);
    for (const auto& [name, steps, work] : res.trace.stages) {
      ts.row({util::Table::S(name),
              util::Table::I(static_cast<long long>(steps)),
              util::Table::F(100.0 * static_cast<double>(steps) /
                             total_steps),
              util::Table::I(static_cast<long long>(work)),
              util::Table::F(static_cast<double>(work) /
                             static_cast<double>(n))});
    }
    ts.print(std::cout);
  }

  // Work-optimality: PRAM work vs sequential wall time per vertex.
  std::cout << "\nWork-optimality check (work/n vs sequential ns/vertex):\n";
  const Solver seq(bench::paper_options(Backend::Sequential));
  util::Table t2({"n", "pram work/n", "seq ns/vertex"});
  for (const std::size_t logn : {14u, 16u, 18u}) {
    const std::size_t n = std::size_t{1} << logn;
    cograph::RandomCotreeOptions opt;
    opt.seed = logn;
    const auto inst = cograph::random_cotree(n, opt);
    const SolveResult pram_res =
        bench::require_ok(solver.solve(Instance::view(inst)));
    const SolveResult seq_res =
        bench::require_ok(seq.solve(Instance::view(inst)));
    t2.row({util::Table::I(static_cast<long long>(n)),
            util::Table::F(static_cast<double>(pram_res.stats.work) /
                           static_cast<double>(n)),
            util::Table::F(seq_res.wall_ms * 1e6 /
                           static_cast<double>(n))});
  }
  t2.print(std::cout);
  std::cout << std::endl;
}

void BM_pipeline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cograph::RandomCotreeOptions opt;
  opt.seed = 77;
  const auto inst = cograph::random_cotree(n, opt);
  const Solver solver(bench::paper_options(Backend::Pram));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(Instance::view(inst)));
  }
}
BENCHMARK(BM_pipeline)->Range(1 << 12, 1 << 16);

}  // namespace

int main(int argc, char** argv) {
  report_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
