// E13 — the copathd serving tier: closed-loop load generation against an
// in-process daemon over real loopback TCP, text vs signature request
// paths, hot (cache-resident) and mixed hot/cold traffic.
//
// Claims (ISSUE 6 acceptance):
//   * warm signature-path RPS >= 2x warm text-path RPS at n = 1024 — the
//     signature fast path (no parsing, no canonicalizer sorts, identity
//     permutations) must survive the wire;
//   * warm daemon p50 stays within 2x of in-process Service::submit at
//     n <= 4096 — the event loop + protocol add bounded overhead.
//
// Sections written to BENCH_daemon.json:
//   inproc_warm        Service::submit hot-hit latency (the baseline)
//   daemon_text_warm   latency percentiles (window 1) + RPS (window 32)
//   daemon_sig_warm    same, raw canonical-signature requests
//   daemon_mixed       3:1 hot:cold, alternating text/signature, RPS
//
// Modes:
//   --json    write BENCH_daemon.json
//   --smoke   quick regression gate: exit 1 unless warm signature RPS >=
//             2x warm text RPS at n = 1024. CI runs this in Release.
//   --chaos   resilience tax: warm closed loop through a RETRYING client,
//             clean vs 1% injected server-write faults (each injected
//             fault kills the victim connection — the client reconnects
//             and retries under backoff). Every request must still
//             succeed; exits 1 otherwise. Reports both p50/p99 so the
//             recovery cost is a number, not a feeling. Ends with a
//             cancellation storm: pipelined solves each chased by a wire
//             Cancel, gated on exactly-once accounting (every solve
//             answers once as Ok or Cancelled, every Cancel acked, the
//             server's completed == submitted).
//
// Plain main — no google-benchmark dependency, so the smoke gate builds
// wherever the library does.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cograph/canonical.hpp"
#include "cograph/families.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/fault.hpp"

namespace {

using namespace copath;
namespace proto = net::protocol;

bench::JsonReport* g_json = nullptr;

// ------------------------------------------------------------- harness

/// A daemon on an ephemeral loopback port with its event loop on a
/// background thread. Drained (gracefully) on destruction.
struct Daemon {
  explicit Daemon(std::size_t inflight_window = 64) {
    net::Server::Options opts;
    opts.port = 0;  // ephemeral
    opts.inflight_window = inflight_window;
    server = std::make_unique<net::Server>(std::move(opts));
    thread = std::thread([this] { server->run(); });
  }
  ~Daemon() {
    server->request_drain();
    thread.join();
  }
  [[nodiscard]] net::Client connect() const {
    return net::Client("127.0.0.1", server->port());
  }

  std::unique_ptr<net::Server> server;
  std::thread thread;
};

struct Workload {
  std::vector<std::string> texts;
  std::vector<std::string> signatures;
};

Workload make_workload(std::size_t n, std::size_t count, unsigned seed) {
  Workload w;
  w.texts.reserve(count);
  w.signatures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    cograph::RandomCotreeOptions gopt;
    gopt.seed = seed + static_cast<unsigned>(i);
    const cograph::Cotree tree = cograph::random_cotree(n, gopt);
    w.texts.push_back(tree.format());
    w.signatures.push_back(
        cograph::canonical_form(tree, /*with_algebra_key=*/false).signature);
  }
  return w;
}

void require_ok(const proto::Response& res) {
  if (res.status != proto::Status::Ok || !res.result.ok) {
    std::cerr << "daemon solve failed: " << proto::to_string(res.status)
              << " " << res.error << "\n";
    std::exit(1);
  }
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * double(sorted.size() - 1));
  return sorted[idx];
}

using SendFn = std::function<void(net::Client&, std::size_t)>;

/// Window-1 closed loop: per-request wall time, sorted ascending (ms).
std::vector<double> measure_latency(net::Client& cli, const SendFn& send,
                                    std::size_t requests) {
  std::vector<double> ms;
  ms.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    util::WallTimer t;
    send(cli, i);
    require_ok(cli.recv());
    ms.push_back(t.millis());
  }
  std::sort(ms.begin(), ms.end());
  return ms;
}

/// Pipelined closed loop: keep `window` in flight, return requests/sec.
double measure_rps(net::Client& cli, const SendFn& send,
                   std::size_t requests, std::size_t window) {
  util::WallTimer t;
  std::size_t sent = 0, received = 0;
  while (sent < std::min(window, requests)) send(cli, sent++);
  cli.flush();
  while (received < requests) {
    require_ok(cli.recv());
    ++received;
    if (sent < requests) send(cli, sent++);
  }
  const double s = t.millis() / 1e3;
  return s > 0 ? double(requests) / s : 0.0;
}

// ------------------------------------------------------------ sections

void run_inproc_warm(std::size_t n, std::size_t requests) {
  Service svc;
  cograph::RandomCotreeOptions gopt;
  gopt.seed = 7;
  const std::string text = cograph::random_cotree(n, gopt).format();
  (void)svc.submit({Instance::text(text), {}, {}}).get();  // populate the cache
  std::vector<double> ms;
  ms.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    util::WallTimer t;
    const SolveResult res = svc.submit({Instance::text(text), {}, {}}).get();
    ms.push_back(t.millis());
    if (!res.ok) {
      std::cerr << "inproc solve failed: " << res.error << "\n";
      std::exit(1);
    }
  }
  std::sort(ms.begin(), ms.end());
  const double p50 = percentile(ms, 0.50), p99 = percentile(ms, 0.99);
  std::cout << "  inproc      n=" << n << "  p50=" << p50 * 1e3
            << "us  p99=" << p99 * 1e3 << "us\n";
  if (g_json != nullptr) {
    g_json->row("inproc_warm", {{"n", double(n)},
                                {"p50_us", p50 * 1e3},
                                {"p99_us", p99 * 1e3}});
  }
}

struct WarmNumbers {
  double p50_us = 0, p99_us = 0, p999_us = 0, rps = 0;
};

WarmNumbers run_daemon_warm(const Daemon& daemon, const std::string& body,
                            bool signature, std::size_t lat_requests,
                            std::size_t rps_requests, std::size_t window) {
  net::Client cli = daemon.connect();
  const SendFn send = [&body, signature](net::Client& c, std::size_t) {
    if (signature) {
      (void)c.send_solve_signature(body);
    } else {
      (void)c.send_solve_text(body);
    }
  };
  send(cli, 0);  // populate the cache before timing
  require_ok(cli.recv());
  WarmNumbers out;
  std::vector<double> ms = measure_latency(cli, send, lat_requests);
  out.p50_us = percentile(ms, 0.50) * 1e3;
  out.p99_us = percentile(ms, 0.99) * 1e3;
  out.p999_us = percentile(ms, 0.999) * 1e3;
  out.rps = measure_rps(cli, send, rps_requests, window);
  return out;
}

void run_mixed(const Daemon& daemon, std::size_t n, std::size_t requests,
               std::size_t window) {
  // 3:1 hot:cold over a 4-instance hot set and a 128-instance cold pool,
  // alternating text and signature bodies — the "many tenants, few hot
  // keys" serving shape.
  const Workload hot = make_workload(n, 4, 1000);
  const Workload cold = make_workload(n, 128, 2000);
  net::Client cli = daemon.connect();
  std::size_t cold_next = 0;
  const SendFn send = [&](net::Client& c, std::size_t i) {
    const bool use_sig = (i % 2) == 0;
    if (i % 4 == 3) {
      const std::size_t j = cold_next++ % cold.texts.size();
      if (use_sig) {
        (void)c.send_solve_signature(cold.signatures[j]);
      } else {
        (void)c.send_solve_text(cold.texts[j]);
      }
    } else {
      const std::size_t j = i % hot.texts.size();
      if (use_sig) {
        (void)c.send_solve_signature(hot.signatures[j]);
      } else {
        (void)c.send_solve_text(hot.texts[j]);
      }
    }
  };
  const double rps = measure_rps(cli, send, requests, window);
  std::cout << "  mixed       n=" << n << "  rps=" << rps << "\n";
  if (g_json != nullptr) {
    g_json->row("daemon_mixed",
                {{"n", double(n)}, {"rps", rps}, {"window", double(window)}});
  }
}

void run_chaos(std::size_t n, std::size_t requests) {
  // A fresh daemon (faults must not bleed into the other sections) and a
  // client armed to survive connection loss: each injected server-write
  // fault destroys the victim connection mid-response, so the loop only
  // completes if reconnect + retry actually work.
  Daemon daemon;
  net::Client::Config cfg;
  cfg.retry.max_attempts = 8;
  cfg.retry.base_delay_ms = 1;
  cfg.retry.max_delay_ms = 16;
  cfg.retry.seed = 99;
  net::Client cli("127.0.0.1", daemon.server->port(), cfg);

  const Workload w = make_workload(n, 1, 42);
  require_ok(cli.solve_text(w.texts[0]));  // populate the cache

  const auto closed_loop = [&](std::size_t reqs) {
    std::vector<double> ms;
    ms.reserve(reqs);
    for (std::size_t i = 0; i < reqs; ++i) {
      util::WallTimer t;
      require_ok(cli.solve_text(w.texts[0]));
      ms.push_back(t.millis());
    }
    std::sort(ms.begin(), ms.end());
    return ms;
  };

  const std::vector<double> clean = closed_loop(requests);
  util::FaultInjector::instance().arm("server.write", 0.01, 99);
  const std::vector<double> faulty = closed_loop(requests);
  const std::uint64_t injected =
      util::FaultInjector::instance().stats("server.write").injected;
  util::FaultInjector::instance().disarm_all();

  const double clean_p50 = percentile(clean, 0.50) * 1e3;
  const double clean_p99 = percentile(clean, 0.99) * 1e3;
  const double chaos_p50 = percentile(faulty, 0.50) * 1e3;
  const double chaos_p99 = percentile(faulty, 0.99) * 1e3;
  std::cout << "  chaos clean n=" << n << "  p50=" << clean_p50
            << "us  p99=" << clean_p99 << "us\n";
  std::cout << "  chaos 1%wf  n=" << n << "  p50=" << chaos_p50
            << "us  p99=" << chaos_p99 << "us  (injected " << injected
            << " write faults over " << requests << " requests; every "
            << "request still answered)\n";
  if (g_json != nullptr) {
    g_json->row("chaos_clean", {{"n", double(n)},
                                {"p50_us", clean_p50},
                                {"p99_us", clean_p99},
                                {"requests", double(requests)}});
    g_json->row("chaos_write_faults", {{"n", double(n)},
                                       {"p50_us", chaos_p50},
                                       {"p99_us", chaos_p99},
                                       {"requests", double(requests)},
                                       {"injected", double(injected)}});
  }
}

void run_cancel_storm(std::size_t n, std::size_t jobs, std::size_t rounds) {
  // Cancellation storm: pipeline a window of distinct (cache-off) solves,
  // then immediately Cancel every one of them while they sit queued or in
  // flight. The gate is exactly-once accounting — every solve seq answers
  // exactly once (Ok or Cancelled), every Cancel frame is acked, and the
  // server's own books balance (completed == submitted) — plus liveness:
  // the same connection must still solve cleanly after the storm.
  net::Server::Options sopts;
  sopts.port = 0;
  sopts.service.workers = 2;
  sopts.service.use_cache = false;  // distinct work per request, no coalescing
  net::Server server(std::move(sopts));
  std::thread loop([&server] { server.run(); });

  const Workload w = make_workload(n, jobs, 4242);
  net::Client cli("127.0.0.1", server.port());

  std::size_t ok = 0, cancelled = 0, storm_faults = 0;
  util::WallTimer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<std::uint64_t> solve_seqs, cancel_seqs;
    solve_seqs.reserve(jobs);
    cancel_seqs.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) {
      solve_seqs.push_back(cli.send_solve_text(w.texts[i]));
    }
    for (const std::uint64_t seq : solve_seqs) {
      cancel_seqs.push_back(cli.send_cancel(seq));
    }
    std::vector<proto::Response> got;
    got.reserve(2 * jobs);
    for (std::size_t i = 0; i < 2 * jobs; ++i) got.push_back(cli.recv());
    for (const std::uint64_t seq : solve_seqs) {
      std::size_t answers = 0;
      for (const auto& res : got) {
        if (res.seq != seq) continue;
        ++answers;
        if (res.status == proto::Status::Ok && res.result.ok) {
          ++ok;
        } else if (res.status == proto::Status::Cancelled) {
          ++cancelled;
        } else {
          ++storm_faults;  // neither a clean answer nor a clean cancel
        }
      }
      if (answers != 1) ++storm_faults;  // dropped or duplicated response
    }
    for (const std::uint64_t seq : cancel_seqs) {
      std::size_t acks = 0;
      for (const auto& res : got) {
        if (res.seq == seq && res.status == proto::Status::Ok) ++acks;
      }
      if (acks != 1) ++storm_faults;
    }
  }
  const double wall_ms = timer.millis();

  const proto::Response st = cli.stats();
  std::uint64_t submitted = 0, completed = 0;
  for (const auto& [key, value] : st.stats) {
    if (key == "submitted") submitted = value;
    if (key == "completed") completed = value;
  }
  if (submitted != completed) ++storm_faults;  // a job the service lost
  require_ok(cli.solve_text(w.texts[0]));      // still serviceable after

  const std::size_t total = jobs * rounds;
  std::cout << "  cancel storm n=" << n << "  jobs=" << total << "  ok="
            << ok << "  cancelled=" << cancelled << "  ("
            << (total > 0 ? 1e3 * wall_ms / double(total) : 0)
            << "us/job; every request answered exactly once)\n";
  if (g_json != nullptr) {
    g_json->row("chaos_cancel_storm", {{"n", double(n)},
                                       {"jobs", double(total)},
                                       {"ok", double(ok)},
                                       {"cancelled", double(cancelled)},
                                       {"wall_ms", wall_ms}});
  }
  server.request_drain();
  loop.join();
  if (storm_faults != 0) {
    std::cerr << "cancel storm accounting failed (" << storm_faults
              << " violations)\n";
    std::exit(1);
  }
}

/// Warm text vs signature at one size; returns {text_rps, sig_rps}.
std::pair<double, double> run_size(const Daemon& daemon, std::size_t n,
                                   std::size_t lat_requests,
                                   std::size_t rps_requests,
                                   std::size_t window) {
  const Workload w = make_workload(n, 1, 42);
  const WarmNumbers text = run_daemon_warm(daemon, w.texts[0], false,
                                           lat_requests, rps_requests,
                                           window);
  const WarmNumbers sig = run_daemon_warm(daemon, w.signatures[0], true,
                                          lat_requests, rps_requests,
                                          window);
  std::cout << "  daemon text n=" << n << "  p50=" << text.p50_us
            << "us  p99=" << text.p99_us << "us  rps=" << text.rps << "\n";
  std::cout << "  daemon sig  n=" << n << "  p50=" << sig.p50_us
            << "us  p99=" << sig.p99_us << "us  rps=" << sig.rps
            << "  (sig/text rps " << (text.rps > 0 ? sig.rps / text.rps : 0)
            << "x)\n";
  if (g_json != nullptr) {
    g_json->row("daemon_text_warm", {{"n", double(n)},
                                     {"p50_us", text.p50_us},
                                     {"p99_us", text.p99_us},
                                     {"p999_us", text.p999_us},
                                     {"rps", text.rps},
                                     {"window", double(window)}});
    g_json->row("daemon_sig_warm", {{"n", double(n)},
                                    {"p50_us", sig.p50_us},
                                    {"p99_us", sig.p99_us},
                                    {"p999_us", sig.p999_us},
                                    {"rps", sig.rps},
                                    {"window", double(window)}});
  }
  return {text.rps, sig.rps};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  }
  // --chaos writes its own report file so it never clobbers the main
  // BENCH_daemon.json sections.
  bench::JsonReport json(&argc, argv, chaos ? "daemon_chaos" : "daemon");
  g_json = &json;

  if (chaos) {
    bench::banner("E13-chaos: resilience tax",
                  "Warm closed loop through a retrying client, clean vs 1% "
                  "injected server-write faults. Completion IS the gate: "
                  "any unanswered request exits nonzero.");
    run_chaos(1024, 2000);
    run_cancel_storm(1024, 16, 8);
    return 0;
  }

  bench::banner("E13: copathd serving tier",
                "Closed-loop load over loopback TCP: the signature fast "
                "path must beat text parsing through the wire, and the "
                "daemon must stay near in-process hit latency.");

  const std::size_t window = 32;
  const std::size_t lat_requests = smoke ? 100 : 400;
  const std::size_t rps_requests = smoke ? 1500 : 4000;

  double text_rps_1024 = 0, sig_rps_1024 = 0;
  {
    Daemon daemon;
    if (smoke) {
      std::tie(text_rps_1024, sig_rps_1024) =
          run_size(daemon, 1024, lat_requests, rps_requests, window);
    } else {
      for (const std::size_t n : {std::size_t{256}, std::size_t{1024},
                                  std::size_t{4096}}) {
        const auto [t, s] =
            run_size(daemon, n, lat_requests, rps_requests, window);
        if (n == 1024) {
          text_rps_1024 = t;
          sig_rps_1024 = s;
        }
      }
      run_mixed(daemon, 1024, rps_requests, window);
    }
  }
  if (!smoke) {
    for (const std::size_t n : {std::size_t{256}, std::size_t{1024},
                                std::size_t{4096}}) {
      run_inproc_warm(n, 400);
    }
  }

  const double ratio =
      text_rps_1024 > 0 ? sig_rps_1024 / text_rps_1024 : 0.0;
  std::cout << "\n  signature/text warm RPS at n=1024: " << ratio << "x\n";
  if (g_json != nullptr) {
    g_json->row("gate", {{"sig_over_text_rps", ratio}});
  }
  if (smoke && ratio < 2.0) {
    std::cerr << "SMOKE FAIL: warm signature RPS " << sig_rps_1024
              << " < 2x warm text RPS " << text_rps_1024 << " (ratio "
              << ratio << ")\n";
    return 1;
  }
  if (smoke) std::cout << "  smoke gate passed (>= 2x)\n";
  return 0;
}
