// E6 — the Hamiltonicity corollary (§1): deciding and constructing
// Hamiltonian paths/cycles through the path cover machinery, all via the
// Solver facade (decide = Solver::count verdicts, construct = solve with
// want_hamiltonian_cycle / the one-path cover).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;

void hamiltonian_table() {
  bench::banner(
      "E6: Hamiltonian path / cycle via path cover",
      "paper: both reduce to the same machinery (p = 1, and the root-split "
      "condition). Decision steps track O(log n) like E3.");
  const Solver decider(bench::paper_options(Backend::Sequential));
  SolveOptions copts = bench::paper_options(Backend::Sequential);
  copts.want_hamiltonian_cycle = true;
  const Solver constructor_(copts);
  util::Table t({"family", "n", "ham_path", "ham_cycle", "decide_ms",
                 "construct_ms"});
  for (const std::size_t logn : {12u, 14u, 16u}) {
    const std::size_t n = std::size_t{1} << logn;
    struct Case {
      const char* name;
      cograph::Cotree t;
    };
    cograph::RandomCotreeOptions opt;
    opt.seed = logn;
    opt.join_root_probability = 1.0;
    const Case cases[] = {
        {"clique", cograph::clique(n)},
        {"K(a,a)", cograph::complete_bipartite(n / 2, n / 2)},
        {"K(2a,a)", cograph::complete_bipartite(2 * n / 3, n / 3)},
        {"join-random", cograph::random_cotree(n, opt)},
    };
    for (const auto& cs : cases) {
      util::WallTimer decide;
      const CountResult verdicts =
          decider.count(SolveRequest{Instance::view(cs.t), {}, {}});
      const double decide_ms = decide.millis();
      bench::require_ok(verdicts);
      util::WallTimer construct;
      if (verdicts.hamiltonian_cycle || verdicts.hamiltonian_path) {
        // One request constructs the cover (= the Hamiltonian path when
        // p(G) = 1) and, where one exists, the cycle order.
        benchmark::DoNotOptimize(
            constructor_.solve(Instance::view(cs.t)));
      }
      t.row({util::Table::S(cs.name),
             util::Table::I(static_cast<long long>(cs.t.vertex_count())),
             util::Table::S(verdicts.hamiltonian_path ? "yes" : "no"),
             util::Table::S(verdicts.hamiltonian_cycle ? "yes" : "no"),
             util::Table::F(decide_ms), util::Table::F(construct.millis())});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void BM_ham_cycle_construct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = cograph::complete_bipartite(n / 2, n / 2);
  SolveOptions opts = bench::paper_options(Backend::Sequential);
  opts.want_hamiltonian_cycle = true;  // the cycle attempt is the measurement
  const Solver solver(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(Instance::view(inst)));
  }
}
BENCHMARK(BM_ham_cycle_construct)->Range(1 << 10, 1 << 16);

void BM_ham_decide_pram_steps(benchmark::State& state) {
  // Decision through the PRAM count; wall time dominated by simulation,
  // the table above carries the step-count story.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = cograph::clique(n);
  const Solver solver(bench::paper_options(Backend::Pram));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.count(SolveRequest{Instance::view(inst), {}, {}}));
  }
}
BENCHMARK(BM_ham_decide_pram_steps)->Range(1 << 10, 1 << 14);

}  // namespace

int main(int argc, char** argv) {
  hamiltonian_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
