// E6 — the Hamiltonicity corollary (§1): deciding and constructing
// Hamiltonian paths/cycles through the path cover machinery.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;

void hamiltonian_table() {
  bench::banner(
      "E6: Hamiltonian path / cycle via path cover",
      "paper: both reduce to the same machinery (p = 1, and the root-split "
      "condition). Decision steps track O(log n) like E3.");
  util::Table t({"family", "n", "ham_path", "ham_cycle", "decide_ms",
                 "construct_ms"});
  for (const std::size_t logn : {12u, 14u, 16u}) {
    const std::size_t n = std::size_t{1} << logn;
    struct Case {
      const char* name;
      cograph::Cotree t;
    };
    cograph::RandomCotreeOptions opt;
    opt.seed = logn;
    opt.join_root_probability = 1.0;
    const Case cases[] = {
        {"clique", cograph::clique(n)},
        {"K(a,a)", cograph::complete_bipartite(n / 2, n / 2)},
        {"K(2a,a)", cograph::complete_bipartite(2 * n / 3, n / 3)},
        {"join-random", cograph::random_cotree(n, opt)},
    };
    for (const auto& cs : cases) {
      util::WallTimer decide;
      const bool hp = core::has_hamiltonian_path(cs.t);
      const bool hc = core::has_hamiltonian_cycle(cs.t);
      const double decide_ms = decide.millis();
      util::WallTimer construct;
      if (hc) {
        benchmark::DoNotOptimize(core::hamiltonian_cycle(cs.t));
      } else if (hp) {
        benchmark::DoNotOptimize(core::hamiltonian_path(cs.t));
      }
      t.row({util::Table::S(cs.name),
             util::Table::I(static_cast<long long>(cs.t.vertex_count())),
             util::Table::S(hp ? "yes" : "no"),
             util::Table::S(hc ? "yes" : "no"),
             util::Table::F(decide_ms), util::Table::F(construct.millis())});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void BM_ham_cycle_construct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = cograph::complete_bipartite(n / 2, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hamiltonian_cycle(inst));
  }
}
BENCHMARK(BM_ham_cycle_construct)->Range(1 << 10, 1 << 16);

void BM_ham_decide_pram_steps(benchmark::State& state) {
  // Decision through the PRAM count; wall time dominated by simulation,
  // the table above carries the step-count story.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto inst = cograph::clique(n);
  auto bc = cograph::binarize(inst);
  const auto leaf_count = cograph::make_leftist(bc);
  for (auto _ : state) {
    auto m = copath::bench::paper_machine(n);
    benchmark::DoNotOptimize(core::path_counts_pram(m, bc, leaf_count));
  }
}
BENCHMARK(BM_ham_decide_pram_steps)->Range(1 << 10, 1 << 14);

}  // namespace

int main(int argc, char** argv) {
  hamiltonian_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
