// E3 — Lemma 2.4: counting the minimum path cover in O(log n) time and
// O(n) work (n / log n EREW processors) via tree contraction.
//
// Expected shape: steps/log2(n) flat; work/n flat.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;
using bench::log2z;

void count_table() {
  bench::banner("E3: Lemma 2.4 — p(u) by tree contraction",
                "paper: O(log n) time, O(n) work on the EREW PRAM with "
                "n/log n processors. Expect steps/log2(n) and work/n flat.");
  util::Table t({"family", "n", "p(root)", "steps", "steps/log2(n)", "work",
                 "work/n"});
  for (const char* family : {"random", "skewed", "caterpillar"}) {
    for (const std::size_t logn : {12u, 14u, 16u, 18u}) {
      const std::size_t n = std::size_t{1} << logn;
      cograph::Cotree inst;
      if (std::string(family) == "caterpillar") {
        inst = cograph::caterpillar(n);
      } else {
        cograph::RandomCotreeOptions opt;
        opt.seed = logn;
        opt.skew = std::string(family) == "skewed" ? 0.8 : 0.0;
        inst = cograph::random_cotree(n, opt);
      }
      auto bc = cograph::binarize(inst);
      const auto leaf_count = cograph::make_leftist(bc);
      auto m = bench::paper_machine(2 * n);
      const auto p = core::path_counts_pram(m, bc, leaf_count);
      t.row({util::Table::S(family),
             util::Table::I(static_cast<long long>(n)),
             util::Table::I(p[static_cast<std::size_t>(bc.tree.root)]),
             util::Table::I(static_cast<long long>(m.stats().steps)),
             util::Table::F(static_cast<double>(m.stats().steps) /
                            static_cast<double>(logn)),
             util::Table::I(static_cast<long long>(m.stats().work)),
             util::Table::F(static_cast<double>(m.stats().work) /
                            static_cast<double>(n))});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void BM_count_pram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cograph::RandomCotreeOptions opt;
  opt.seed = 11;
  const auto inst = cograph::random_cotree(n, opt);
  auto bc = cograph::binarize(inst);
  const auto leaf_count = cograph::make_leftist(bc);
  for (auto _ : state) {
    auto m = bench::paper_machine(2 * n);
    benchmark::DoNotOptimize(core::path_counts_pram(m, bc, leaf_count));
  }
}
BENCHMARK(BM_count_pram)->Range(1 << 12, 1 << 17);

void BM_count_host(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cograph::RandomCotreeOptions opt;
  opt.seed = 11;
  const auto inst = cograph::random_cotree(n, opt);
  auto bc = cograph::binarize(inst);
  const auto leaf_count = cograph::make_leftist(bc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::path_counts_host(bc, leaf_count));
  }
}
BENCHMARK(BM_count_host)->Range(1 << 12, 1 << 17);

}  // namespace

int main(int argc, char** argv) {
  count_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
