// E3 — Lemma 2.4: counting the minimum path cover in O(log n) time and
// O(n) work (n / log n EREW processors) via tree contraction, through
// Solver::count (the count-only facade entry).
//
// Expected shape: steps/log2(n) flat; work/n flat.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace copath;
using bench::log2z;

void count_table() {
  bench::banner("E3: Lemma 2.4 — p(u) by tree contraction",
                "paper: O(log n) time, O(n) work on the EREW PRAM with "
                "n/log n processors. Expect steps/log2(n) and work/n flat.");
  const Solver solver(bench::paper_options(Backend::Pram));
  util::Table t({"family", "n", "p(root)", "steps", "steps/log2(n)", "work",
                 "work/n"});
  for (const char* family : {"random", "skewed", "caterpillar"}) {
    for (const std::size_t logn : {12u, 14u, 16u, 18u}) {
      const std::size_t n = std::size_t{1} << logn;
      cograph::Cotree inst;
      if (std::string(family) == "caterpillar") {
        inst = cograph::caterpillar(n);
      } else {
        cograph::RandomCotreeOptions opt;
        opt.seed = logn;
        opt.skew = std::string(family) == "skewed" ? 0.8 : 0.0;
        inst = cograph::random_cotree(n, opt);
      }
      const CountResult res =
          solver.count(SolveRequest{Instance::view(inst), {}, {}});
      bench::require_ok(res);
      t.row({util::Table::S(family),
             util::Table::I(static_cast<long long>(n)),
             util::Table::I(res.path_cover_size),
             util::Table::I(static_cast<long long>(res.stats.steps)),
             util::Table::F(static_cast<double>(res.stats.steps) /
                            static_cast<double>(logn)),
             util::Table::I(static_cast<long long>(res.stats.work)),
             util::Table::F(static_cast<double>(res.stats.work) /
                            static_cast<double>(n))});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

// The BM loops time the full count *request* (binarize + leftist prep +
// the counting sweep + verdicts), i.e. facade latency — every component is
// O(n) host-side except the O(log n)-step simulated contraction, so the
// asymptotic story is unchanged but the absolute numbers include prep.
// The table above isolates Lemma 2.4 itself via the simulated step/work
// counts, which host-side prep cannot pollute.
void BM_count_request_pram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cograph::RandomCotreeOptions opt;
  opt.seed = 11;
  const auto inst = cograph::random_cotree(n, opt);
  const Solver solver(bench::paper_options(Backend::Pram));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.count(SolveRequest{Instance::view(inst), {}, {}}));
  }
}
BENCHMARK(BM_count_request_pram)->Range(1 << 12, 1 << 17);

void BM_count_request_host(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cograph::RandomCotreeOptions opt;
  opt.seed = 11;
  const auto inst = cograph::random_cotree(n, opt);
  const Solver solver(bench::paper_options(Backend::Sequential));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.count(SolveRequest{Instance::view(inst), {}, {}}));
  }
}
BENCHMARK(BM_count_request_host)->Range(1 << 12, 1 << 17);

}  // namespace

int main(int argc, char** argv) {
  count_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
