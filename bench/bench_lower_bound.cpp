// E1 — Theorem 2.2 (lower bound, Fig 2).
//
// The paper reduces OR(n bits) to path cover counting: the reduction is an
// O(1)-step construction, so counting cannot beat the Ω(log n) CREW bound
// for OR. This bench exhibits the tightness: construction steps stay
// constant while counting steps track c · log2(n). It drives the
// self-contained or_via_path_cover overload (the machine lives in src/).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/or_reduction.hpp"

namespace {

using namespace copath;
using bench::log2z;

void or_table() {
  bench::banner("E1: Theorem 2.2 — OR reduction",
                "paper: O(1)-step construction; counting needs Ω(log n) and "
                "our Lemma 2.4 path meets O(log n). Expect steps/log2(n) "
                "flat, construction steps constant.");
  util::Table t({"n", "ones", "cover", "OR", "construct_steps",
                 "count_steps", "count_steps/log2(n)"});
  for (const std::size_t logn : {10u, 12u, 14u, 16u, 18u}) {
    const std::size_t n = std::size_t{1} << logn;
    for (const double density : {0.0, 1.0 / static_cast<double>(n), 0.5}) {
      std::vector<std::uint8_t> bits(n, 0);
      util::Rng rng(n);
      std::size_t ones = 0;
      for (auto& b : bits) {
        b = rng.chance(density) ? 1 : 0;
        ones += b;
      }
      // Theorem 2.2's setting allows unbounded processors: one per element
      // (processors = 0 → maximal parallelism), so the construction is a
      // single synchronous step as in the paper.
      core::OrReductionOptions opt;  // Unchecked, processors = 0
      const auto res = core::or_via_path_cover(bits, opt);
      t.row({util::Table::I(static_cast<long long>(n)),
             util::Table::I(static_cast<long long>(ones)),
             util::Table::I(res.path_cover_size),
             util::Table::S(res.or_value ? "1" : "0"),
             util::Table::I(static_cast<long long>(res.construction_steps)),
             util::Table::I(static_cast<long long>(res.count_steps)),
             util::Table::F(static_cast<double>(res.count_steps) /
                            static_cast<double>(logn))});
    }
  }
  t.print(std::cout);
  std::cout << std::endl;
}

void BM_or_reduction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> bits(n, 0);
  bits[n / 2] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::or_via_path_cover(bits));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_or_reduction)->Range(1 << 10, 1 << 16)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  or_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
